//! The top-level GPU: box construction, signal wiring, the clock loop and
//! the DAC.
//!
//! [`Gpu::new`] instantiates every unit of the configured pipeline
//! (Figures 1/2/5 of the paper), registers all signals in a
//! [`SignalBinder`] and wires them with flow-controlled ports.
//! [`Gpu::run_trace`] feeds a Command Processor trace and clocks the
//! machine until it drains, collecting statistics and framebuffer dumps.

use std::cell::Cell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use attila_emu::fragops::DEPTH_MAX;
use attila_mem::{Client, MemOp, MemRequest, MemoryController};
use attila_sim::{
    partition_chain, BoxNode, Counter, Cycle, DrainStaged, FaultInjector, Horizon, LintReport,
    SignalBinder, SimError, StatsRegistry, Topology,
};

use crate::address::{pixel_address, FB_TILE_BYTES};
use crate::checkpoint::{Checkpoint, CheckpointBody, SignalCounterState};
use crate::clipper::Clipper;
use crate::colorwrite::ColorWriteUnit;
use crate::command_processor::{CommandProcessor, CpAction};
use crate::commands::GpuCommand;
use crate::config::{GpuConfig, OnFault};
use crate::ffifo::FragmentFifo;
use crate::fraggen::FragmentGenerator;
use crate::hz::HierarchicalZ;
use crate::interpolator::Interpolator;
use crate::port::{port, PortReceiver, PortSender};
use crate::primitive_assembly::PrimitiveAssembly;
use crate::report::{BoxStatus, FailureReport};
use crate::setup::TriangleSetup;
use crate::shard::ShardCell;
use crate::streamer::Streamer;
use crate::texunit::TextureUnit;
use crate::zstencil::ZStencilUnit;

/// A dumped frame (the DAC's output file in the paper — used to verify
/// the simulation against a reference image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDump {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major RGBA bytes, row 0 at the bottom (OpenGL convention).
    pub rgba: Vec<u8>,
}

impl FrameDump {
    /// Serializes as a binary PPM (`P6`) image, flipping to top-down rows.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let o = ((y * self.width + x) * 4) as usize;
                out.extend_from_slice(&self.rgba[o..o + 3]);
            }
        }
        out
    }

    /// The RGBA pixel at `(x, y)` (bottom-up), or `None` when the
    /// coordinate lies outside the dump.
    pub fn pixel(&self, x: u32, y: u32) -> Option<[u8; 4]> {
        if x >= self.width || y >= self.height {
            return None;
        }
        let o = ((y * self.width + x) * 4) as usize;
        self.rgba.get(o..o + 4).map(|px| px.try_into().expect("4 bytes"))
    }
}

/// The DAC box: dumps the colour buffer at swap and models the (small)
/// refresh bandwidth with timing reads.
#[derive(Debug)]
struct Dac {
    pending_reads: std::collections::VecDeque<u64>,
    next_id: u64,
    stat_bytes: Counter,
}

impl Dac {
    fn clock(&mut self, _cycle: Cycle, mem: &mut MemoryController) {
        while mem.pop_reply(Client::Dac).is_some() {}
        while let Some(&addr) = self.pending_reads.front() {
            if !mem.can_accept(Client::Dac, addr) {
                break;
            }
            self.pending_reads.pop_front();
            let id = self.next_id;
            self.next_id += 1;
            let _ = mem.submit(MemRequest {
                id,
                client: Client::Dac,
                addr,
                op: MemOp::TimingRead { size: 64 },
            });
            self.stat_bytes.add(64);
        }
    }

    fn busy(&self) -> bool {
        !self.pending_reads.is_empty()
    }

    /// The box's event horizon: busy while refresh reads wait to be
    /// submitted, idle otherwise — in-flight replies are covered by the
    /// memory controller's horizon.
    fn work_horizon(&self) -> Horizon {
        if self.pending_reads.is_empty() {
            Horizon::Idle
        } else {
            Horizon::Busy
        }
    }
}

/// Result of running a command trace.
#[derive(Debug)]
pub struct RunResult {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Frames completed (swaps).
    pub frames: u64,
    /// DAC dumps, one per frame.
    pub framebuffers: Vec<FrameDump>,
}

impl RunResult {
    /// Frames per second at the configured core clock.
    pub fn fps(&self, clock_mhz: u32) -> f64 {
        if self.cycles == 0 || self.frames == 0 {
            return 0.0;
        }
        let seconds = self.cycles as f64 / (clock_mhz as f64 * 1e6);
        self.frames as f64 / seconds
    }
}

/// Errors surfaced by [`Gpu::run_trace`].
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// The watchdog expired: the pipeline failed to drain. The attached
    /// report shows which boxes still held work.
    Watchdog {
        /// The cycle limit that was hit.
        limit: Cycle,
        /// Machine snapshot at expiry.
        report: Box<FailureReport>,
    },
    /// A signal verification check failed (possibly via an injected
    /// fault) and the [`OnFault::Abort`] policy was in force.
    Sim {
        /// The underlying verification error.
        error: SimError,
        /// Machine snapshot at the failing cycle.
        report: Box<FailureReport>,
    },
    /// The configuration is inconsistent.
    BadConfig(String),
}

impl GpuError {
    /// The failure report attached to the error, when there is one.
    pub fn report(&self) -> Option<&FailureReport> {
        match self {
            GpuError::Watchdog { report, .. } | GpuError::Sim { report, .. } => Some(report),
            GpuError::BadConfig(_) => None,
        }
    }
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::Watchdog { limit, .. } => {
                write!(f, "simulation watchdog expired after {limit} cycles")
            }
            GpuError::Sim { error, .. } => write!(f, "simulation fault: {error}"),
            GpuError::BadConfig(msg) => write!(f, "bad GPU configuration: {msg}"),
        }
    }
}

impl std::error::Error for GpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpuError::Sim { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// The assembled ATTILA GPU.
pub struct Gpu {
    /// Declared first so the clock-domain workers join (in
    /// [`WorkerPool`]'s `Drop`) before any state they could observe is
    /// torn down.
    pool: Option<WorkerPool>,
    config: GpuConfig,
    binder: SignalBinder,
    stats: StatsRegistry,
    mem: MemoryController,
    cp: CommandProcessor,
    streamer: Streamer,
    /// The seven memory-decoupled pipeline boxes, behind [`ShardCell`]s so
    /// the worker pool can clock them during the parallel phase of each
    /// cycle. A single-threaded machine uses the same layout; the cells
    /// are then only ever touched from one thread.
    cells: Arc<PureCells>,
    zstencil: Vec<ZStencilUnit>,
    texunits: Vec<TextureUnit>,
    colorwrite: Vec<ColorWriteUnit>,
    dac: Dac,
    cycle: Cycle,
    frames: u64,
    framebuffers: Vec<FrameDump>,
    /// Watchdog limit for [`run_trace`](Self::run_trace).
    pub max_cycles: Cycle,
    /// Keep per-frame DAC dumps (disable for long benchmark runs).
    pub keep_frames: bool,
    /// Let the clock loop jump over provably idle cycles (the
    /// event-horizon scheduler). On by default;
    /// [`arm_faults`](Self::arm_faults) turns it off because injected
    /// faults consult per-clock state the horizon cannot see. Results are
    /// bit-identical either way — only wall-clock time changes.
    pub skip_idle: bool,
    /// Cycles the scheduler jumped over (a plain field, *not* a stats
    /// counter: the stats CSV must be identical with skipping on or off).
    cycles_skipped: Cycle,
    /// Steps left before [`poll_horizon`](Self::poll_horizon) evaluates
    /// the horizon again after a `Busy` verdict.
    horizon_backoff: Cycle,
    /// Flat per-cycle box schedule: one dispatch entry per clocked unit,
    /// fixed at elaboration from the configured unit counts. The clock
    /// loop walks this array instead of re-deriving the box sequence (and
    /// its per-variant loops) every cycle, and [`work_horizon`](Self::work_horizon)
    /// folds over the same array so the two can never disagree about
    /// which units exist.
    schedule: Box<[ScheduleEntry]>,
    /// Forensic trace sink, when signal tracing is enabled.
    trace: Option<attila_sim::TraceSink>,
    /// Faults tolerated (not aborted on) under `OnFault::{Isolate,Report}`.
    fault_log: Vec<SimError>,
    /// A framebuffer dump that failed its bounds check mid-step.
    dump_failure: Option<GpuError>,
    /// Take a crash-safe checkpoint at the first quiescent point at or
    /// after every `N` simulated cycles (see [`crate::checkpoint`]).
    pub checkpoint_every: Option<Cycle>,
    /// Destination file for the automatic checkpoints
    /// [`run_trace`](Self::run_trace) writes (atomic write-then-rename: a
    /// killed process always finds the latest valid checkpoint here).
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Cycle at or after which the next automatic checkpoint is due.
    next_checkpoint_at: Cycle,
    /// Every command ever enqueued — the trace-hash input, maintained
    /// while checkpointing is enabled.
    trace_log: Vec<GpuCommand>,
    /// A fault injector adopted via [`adopt_faults`](Self::adopt_faults),
    /// owned so checkpoints carry its progress.
    fault_injector: Option<FaultInjector>,
    /// The coordinator's share of the threaded schedule: every
    /// memory-coupled box, tagged with its position in the serial
    /// [`schedule`](Self::schedule) for deterministic error selection.
    coord_schedule: Box<[(ScheduleEntry, u32)]>,
    /// Drain handles for every staged cross-domain wire, in wiring order —
    /// the fixed topology order mailboxes flush in at the barrier.
    staged_drains: Vec<Box<dyn DrainStaged>>,
    /// Arms the staged (mailbox) transport on the crossing wires. Shared
    /// with every staged [`SignalWriter`](attila_sim::SignalWriter);
    /// cleared — one way — when fault injection or signal tracing needs
    /// the serial transport's full semantics.
    staging_enabled: Rc<Cell<bool>>,
    /// Effective clock-loop thread count (1 = serial).
    threads: usize,
}

/// Box names of the memory-decoupled pipeline chain, in schedule order —
/// the seven units whose `clock()` touches only their own state and their
/// signal endpoints, and can therefore run on worker threads. The chain is
/// split into contiguous clock domains by [`partition_chain`] at
/// elaboration, minimizing the signal bandwidth crossing the cuts.
const PURE_CHAIN: [&str; 7] = [
    "PrimitiveAssembly",
    "Clipper",
    "TriangleSetup",
    "FragmentGenerator",
    "HierarchicalZ",
    "Interpolator",
    "FragmentFIFO",
];

/// The worker-steppable boxes, stored behind [`ShardCell`]s (see
/// [`crate::shard`] for the phase-ownership protocol that makes the
/// accessors sound).
struct PureCells {
    pa: ShardCell<PrimitiveAssembly>,
    clipper: ShardCell<Clipper>,
    setup: ShardCell<TriangleSetup>,
    fraggen: ShardCell<FragmentGenerator>,
    hz: ShardCell<HierarchicalZ>,
    interpolator: ShardCell<Interpolator>,
    ffifo: ShardCell<FragmentFifo>,
}

/// Which pure box a worker plan entry clocks.
#[derive(Debug, Clone, Copy)]
enum PureKind {
    Pa,
    Clipper,
    Setup,
    FragGen,
    Hz,
    Interpolator,
    FragmentFifo,
}

/// Clocks one pure box through its cell — the only routine that touches
/// the cells from worker threads.
#[allow(unsafe_code)]
fn clock_pure(cells: &PureCells, kind: PureKind, cycle: Cycle) -> Result<(), SimError> {
    // SAFETY: the caller is the phase owner of this box's clock domain
    // (the worker assigned to it during a parallel phase; the coordinator
    // otherwise — see `crate::shard`), so no other thread touches the
    // cell concurrently.
    unsafe {
        match kind {
            PureKind::Pa => cells.pa.get_mut().clock(cycle),
            PureKind::Clipper => cells.clipper.get_mut().clock(cycle),
            PureKind::Setup => cells.setup.get_mut().clock(cycle),
            PureKind::FragGen => cells.fraggen.get_mut().clock(cycle),
            PureKind::Hz => cells.hz.get_mut().clock(cycle),
            PureKind::Interpolator => cells.interpolator.get_mut().clock(cycle),
            PureKind::FragmentFifo => cells.ffifo.get_mut().clock(cycle),
        }
    }
}

/// How a worker's share of a cycle went wrong, tagged with the failing
/// box's position in the serial schedule so the coordinator can report the
/// same first error a serial walk would have hit.
enum WorkerFailure {
    /// A signal verification error from a box's `clock()`.
    Error {
        /// Serial schedule position of the failing box.
        pos: u32,
        /// The verification error itself.
        error: SimError,
    },
    /// A box panicked; the payload is re-thrown on the coordinator.
    Panic {
        /// Serial schedule position of the panicking box.
        pos: u32,
        /// The panic message, best-effort.
        message: String,
    },
}

impl WorkerFailure {
    fn pos(&self) -> u32 {
        match self {
            WorkerFailure::Error { pos, .. } | WorkerFailure::Panic { pos, .. } => *pos,
        }
    }
}

/// State shared between the coordinator and the clock-domain workers.
struct PoolShared {
    cells: Arc<PureCells>,
    /// Per-worker clock plans: `(box, serial schedule position)`, in
    /// serial schedule order within each plan.
    plans: Vec<Vec<(PureKind, u32)>>,
    /// Barrier epoch. The coordinator publishes `cycle`, then bumps this
    /// (Release) to hand the cells to the workers for one parallel phase.
    epoch: AtomicU64,
    /// The cycle the current epoch clocks.
    cycle: AtomicU64,
    /// Last epoch each worker completed (Release on store; the
    /// coordinator's Acquire load takes the cells back).
    done: Vec<AtomicU64>,
    /// Tells the workers to exit at the next epoch bump.
    stop: AtomicBool,
    /// First failure per worker in the current epoch, if any.
    failures: Vec<Mutex<Option<WorkerFailure>>>,
}

/// The clock-domain worker threads; joined on drop.
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(cells: Arc<PureCells>, plans: Vec<Vec<(PureKind, u32)>>) -> Self {
        let workers = plans.len();
        let shared = Arc::new(PoolShared {
            cells,
            plans,
            epoch: AtomicU64::new(0),
            cycle: AtomicU64::new(0),
            done: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            stop: AtomicBool::new(false),
            failures: (0..workers).map(|_| Mutex::new(None)).collect(),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("attila-domain-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn clock-domain worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "clock-domain worker panicked".to_string()
    }
}

/// Spin briefly, then yield — parked threads must not starve a loaded
/// (or single-core) machine.
fn barrier_wait(spins: &mut u32) {
    *spins = spins.wrapping_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// One clock-domain worker: waits for an epoch, clocks its plan in serial
/// schedule order, records the first failure, signals done.
fn worker_loop(shared: &PoolShared, idx: usize) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        let epoch = loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            barrier_wait(&mut spins);
        };
        seen = epoch;
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let cycle = shared.cycle.load(Ordering::Relaxed);
        let mut failure = None;
        for &(kind, pos) in &shared.plans[idx] {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                clock_pure(&shared.cells, kind, cycle)
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(error)) => {
                    failure = Some(WorkerFailure::Error { pos, error });
                    break;
                }
                Err(payload) => {
                    failure = Some(WorkerFailure::Panic {
                        pos,
                        message: panic_text(payload.as_ref()),
                    });
                    break;
                }
            }
        }
        if failure.is_some() {
            *shared.failures[idx].lock().expect("failure slot poisoned") = failure;
        }
        shared.done[idx].store(epoch, Ordering::Release);
    }
}

/// Stages both wires of a flow-controlled port when its endpoints landed
/// in different clock domains: data flows sender→receiver, credits flow
/// back, so each side owns one crossing writer. Staged writers latch into
/// preallocated mailboxes the coordinator drains between epochs in wiring
/// order.
fn stage_crossing<T: std::fmt::Debug + 'static>(
    drains: &mut Vec<Box<dyn DrainStaged>>,
    enabled: &Rc<Cell<bool>>,
    from_domain: usize,
    to_domain: usize,
    tx: &mut PortSender<T>,
    rx: &mut PortReceiver<T>,
) {
    if from_domain != to_domain {
        drains.push(tx.stage(Rc::clone(enabled)));
        drains.push(rx.stage_credits(Rc::clone(enabled)));
    }
}

/// Steps a `Busy` horizon verdict stays cached before re-evaluating
/// (see `Gpu::poll_horizon`).
const HORIZON_BACKOFF: Cycle = 32;

/// One entry of the flat clock schedule (see [`Gpu::try_step`]): which box
/// to clock, with the unit index for replicated units. The Command
/// Processor is not an entry — it clocks first with extra arguments (the
/// machine idle flag) and its side-effect queue drains before the rest of
/// the pipeline sees the cycle.
#[derive(Debug, Clone, Copy)]
enum ScheduleEntry {
    Streamer,
    PrimitiveAssembly,
    Clipper,
    Setup,
    FragGen,
    Hz,
    ZStencil(u8),
    Interpolator,
    FragmentFifo,
    TexUnit(u8),
    ColorWrite(u8),
    Dac,
    Memory,
}

impl Gpu {
    /// Events retained by the forensic trace a fault injector arms.
    const FORENSIC_TRACE_EVENTS: usize = 32;

    /// Builds the GPU described by `config` with the serial clock loop.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. differing
    /// Z-stencil and colour-write unit counts — the paper couples its
    /// "fragment test and framebuffer update" units).
    pub fn new(config: GpuConfig) -> Self {
        Self::with_threads(config, 1)
    }

    /// Builds the GPU with a threaded clock loop: the memory-decoupled
    /// pipeline chain (`PURE_CHAIN`) is partitioned into up to
    /// `threads - 1` contiguous clock domains (a min-bandwidth cut over
    /// the signal topology), each stepped by a dedicated worker thread
    /// under a per-cycle barrier, while the coordinator clocks the
    /// memory-coupled boxes. Cross-domain signals flow through staged
    /// mailboxes drained at the barrier in fixed wiring order, which keeps
    /// cycles, statistics and framebuffers bit-identical to the serial
    /// loop at every thread count.
    ///
    /// `threads <= 1` (or a fault policy other than [`OnFault::Abort`],
    /// whose tolerate-and-continue semantics need the serial transport)
    /// yields the plain serial machine. Arming fault injection or signal
    /// tracing on a threaded machine likewise drops it back to the serial
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent, as [`Gpu::new`] does.
    pub fn with_threads(config: GpuConfig, threads: usize) -> Self {
        if let Err(e) = config.validate() {
            panic!("bad GPU configuration: {e}");
        }

        let mut binder = SignalBinder::new();
        let mut stats = StatsRegistry::new(config.stats.window_cycles);
        let mem = MemoryController::new(
            config.memory.to_controller_config(),
            config.memory.gpu_memory_bytes(),
        );

        let b = &mut binder;
        let n_rop = config.zstencil.units;
        let n_tu = config.texture.units;

        // --- ports -------------------------------------------------------
        let (mut cp_draw_tx, mut cp_draw_rx) =
            port(b, "CP->Streamer.draws", "CommandProcessor", "Streamer", 1, 1, 2).unwrap();
        let (mut st_work_tx, mut st_work_rx) =
            port(b, "Streamer->FFIFO.vertices", "Streamer", "FragmentFIFO", 1, 1, 16).unwrap();
        let (mut ff_shaded_tx, mut ff_shaded_rx) =
            port(b, "FFIFO->Streamer.shaded", "FragmentFIFO", "Streamer", 4, 1, 16).unwrap();
        let (mut st_out_tx, mut st_out_rx) = port(
            b,
            "Streamer->PA.vertices",
            "Streamer",
            "PrimitiveAssembly",
            1,
            config.streamer.latency.max(1),
            config.primitive_assembly.input_queue,
        )
        .unwrap();
        let (mut pa_tx, mut pa_rx) = port(
            b,
            "PA->Clipper.triangles",
            "PrimitiveAssembly",
            "Clipper",
            1,
            config.primitive_assembly.latency.max(1),
            config.clipper.input_queue,
        )
        .unwrap();
        let (mut cl_tx, mut cl_rx) = port(
            b,
            "Clipper->Setup.triangles",
            "Clipper",
            "TriangleSetup",
            1,
            config.clipper.latency.max(1),
            config.setup.input_queue,
        )
        .unwrap();
        let (mut su_tx, mut su_rx) = port(
            b,
            "Setup->FragGen.triangles",
            "TriangleSetup",
            "FragmentGenerator",
            1,
            config.setup.latency.max(1),
            config.fraggen.input_queue,
        )
        .unwrap();
        let (mut fg_tx, mut fg_rx) = port(
            b,
            "FragGen->HZ.tiles",
            "FragmentGenerator",
            "HierarchicalZ",
            config.fraggen.tiles_per_cycle as usize,
            config.fraggen.latency.max(1),
            config.hz.input_queue,
        )
        .unwrap();

        let mut hz_to_zst_tx = Vec::new();
        let mut hz_to_zst_rx = Vec::new();
        let mut zst_to_interp_tx = Vec::new();
        let mut zst_to_interp_rx = Vec::new();
        let mut ff_to_zst_tx = Vec::new();
        let mut ff_to_zst_rx = Vec::new();
        let mut zst_to_cw_tx = Vec::new();
        let mut zst_to_cw_rx = Vec::new();
        let mut ff_to_cw_tx = Vec::new();
        let mut ff_to_cw_rx = Vec::new();
        let mut zst_hz_tx = Vec::new();
        let mut zst_hz_rx = Vec::new();
        for i in 0..n_rop {
            let zst = format!("ZStencil{i}");
            let cw = format!("ColorWrite{i}");
            let (tx, rx) = port(
                b,
                &format!("HZ->{zst}.quads"),
                "HierarchicalZ",
                &zst,
                2,
                config.hz.latency.max(1),
                config.zstencil.input_queue,
            )
            .unwrap();
            hz_to_zst_tx.push(tx);
            hz_to_zst_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("{zst}->Interpolator.quads"),
                &zst,
                "Interpolator",
                1,
                config.zstencil.latency.max(1),
                8,
            )
            .unwrap();
            zst_to_interp_tx.push(tx);
            zst_to_interp_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("FFIFO->{zst}.quads"),
                "FragmentFIFO",
                &zst,
                1,
                1,
                config.zstencil.input_queue,
            )
            .unwrap();
            ff_to_zst_tx.push(tx);
            ff_to_zst_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("{zst}->{cw}.quads"),
                &zst,
                &cw,
                1,
                config.zstencil.latency.max(1),
                config.colorwrite.input_queue,
            )
            .unwrap();
            zst_to_cw_tx.push(tx);
            zst_to_cw_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("FFIFO->{cw}.quads"),
                "FragmentFIFO",
                &cw,
                1,
                1,
                config.colorwrite.input_queue,
            )
            .unwrap();
            ff_to_cw_tx.push(tx);
            ff_to_cw_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("{zst}->HZ.updates"),
                &zst,
                "HierarchicalZ",
                4,
                1,
                32,
            )
            .unwrap();
            zst_hz_tx.push(tx);
            zst_hz_rx.push(rx);
        }
        let (mut hz_late_tx, mut hz_late_rx) = port(
            b,
            "HZ->Interpolator.quads",
            "HierarchicalZ",
            "Interpolator",
            2,
            config.hz.latency.max(1),
            16,
        )
        .unwrap();
        let (mut in_tx, mut in_rx) = port(
            b,
            "Interpolator->FFIFO.quads",
            "Interpolator",
            "FragmentFIFO",
            (config.interpolator.frags_per_cycle / 4).max(1) as usize,
            1,
            16,
        )
        .unwrap();

        let mut tex_req_tx = Vec::new();
        let mut tex_req_rx = Vec::new();
        let mut tex_rep_tx = Vec::new();
        let mut tex_rep_rx = Vec::new();
        for i in 0..n_tu {
            let tu = format!("Texture{i}");
            let (tx, rx) = port(
                b,
                &format!("FFIFO->{tu}.requests"),
                "FragmentFIFO",
                &tu,
                1,
                1,
                config.texture.request_queue,
            )
            .unwrap();
            tex_req_tx.push(tx);
            tex_req_rx.push(rx);
            let (tx, rx) =
                port(b, &format!("{tu}->FFIFO.replies"), &tu, "FragmentFIFO", 1, 1, 16).unwrap();
            tex_rep_tx.push(tx);
            tex_rep_rx.push(rx);
        }

        // --- clock domains ----------------------------------------------
        // The memory-coupled boxes (Streamer, ZStencil, TexUnit,
        // ColorWrite, DAC, Memory) stay on the coordinator — domain 0.
        // The pure chain splits into up to `threads - 1` worker domains
        // along the minimum-bandwidth cuts of the signal graph; every
        // wire whose writer and reader landed in different domains gets a
        // staged mailbox lane.
        let workers = if threads > 1 && config.on_fault == OnFault::Abort {
            (threads - 1).min(PURE_CHAIN.len())
        } else {
            0
        };
        let staging_enabled = Rc::new(Cell::new(workers > 0));
        let mut staged_drains: Vec<Box<dyn DrainStaged>> = Vec::new();
        let seg = if workers > 0 {
            partition_chain(&PURE_CHAIN, workers, &binder.edges())
        } else {
            vec![0; PURE_CHAIN.len()]
        };
        // Domain of a box: 0 for coordinator boxes, 1 + segment for the
        // chain (all zero when running serial, so nothing stages).
        let dom = |name: &str| -> usize {
            if workers == 0 {
                return 0;
            }
            PURE_CHAIN.iter().position(|&c| c == name).map_or(0, |i| seg[i] + 1)
        };
        {
            let d = &mut staged_drains;
            let en = &staging_enabled;
            stage_crossing(d, en, 0, dom("Streamer"), &mut cp_draw_tx, &mut cp_draw_rx);
            stage_crossing(
                d,
                en,
                dom("Streamer"),
                dom("FragmentFIFO"),
                &mut st_work_tx,
                &mut st_work_rx,
            );
            stage_crossing(
                d,
                en,
                dom("FragmentFIFO"),
                dom("Streamer"),
                &mut ff_shaded_tx,
                &mut ff_shaded_rx,
            );
            stage_crossing(
                d,
                en,
                dom("Streamer"),
                dom("PrimitiveAssembly"),
                &mut st_out_tx,
                &mut st_out_rx,
            );
            stage_crossing(
                d,
                en,
                dom("PrimitiveAssembly"),
                dom("Clipper"),
                &mut pa_tx,
                &mut pa_rx,
            );
            stage_crossing(
                d,
                en,
                dom("Clipper"),
                dom("TriangleSetup"),
                &mut cl_tx,
                &mut cl_rx,
            );
            stage_crossing(
                d,
                en,
                dom("TriangleSetup"),
                dom("FragmentGenerator"),
                &mut su_tx,
                &mut su_rx,
            );
            stage_crossing(
                d,
                en,
                dom("FragmentGenerator"),
                dom("HierarchicalZ"),
                &mut fg_tx,
                &mut fg_rx,
            );
            let hz_d = dom("HierarchicalZ");
            let interp_d = dom("Interpolator");
            let ffifo_d = dom("FragmentFIFO");
            for i in 0..hz_to_zst_tx.len() {
                // ZStencil / ColorWrite / Texture units are domain 0.
                stage_crossing(d, en, hz_d, 0, &mut hz_to_zst_tx[i], &mut hz_to_zst_rx[i]);
                stage_crossing(
                    d,
                    en,
                    0,
                    interp_d,
                    &mut zst_to_interp_tx[i],
                    &mut zst_to_interp_rx[i],
                );
                stage_crossing(d, en, ffifo_d, 0, &mut ff_to_zst_tx[i], &mut ff_to_zst_rx[i]);
                stage_crossing(d, en, ffifo_d, 0, &mut ff_to_cw_tx[i], &mut ff_to_cw_rx[i]);
                stage_crossing(d, en, 0, hz_d, &mut zst_hz_tx[i], &mut zst_hz_rx[i]);
            }
            stage_crossing(d, en, hz_d, interp_d, &mut hz_late_tx, &mut hz_late_rx);
            stage_crossing(d, en, interp_d, ffifo_d, &mut in_tx, &mut in_rx);
            for i in 0..tex_req_tx.len() {
                stage_crossing(d, en, ffifo_d, 0, &mut tex_req_tx[i], &mut tex_req_rx[i]);
                stage_crossing(d, en, 0, ffifo_d, &mut tex_rep_tx[i], &mut tex_rep_rx[i]);
            }
        }

        // --- boxes -------------------------------------------------------
        let cp = CommandProcessor::new(cp_draw_tx, &mut stats);
        let streamer = Streamer::new(
            config.streamer.clone(),
            cp_draw_rx,
            st_work_tx,
            ff_shaded_rx,
            st_out_tx,
            &mut stats,
        );
        let pa = PrimitiveAssembly::new(st_out_rx, pa_tx, &mut stats);
        let clipper = Clipper::new(pa_rx, cl_tx, &mut stats);
        let setup = TriangleSetup::new(cl_rx, su_tx, &mut stats);
        let fraggen = FragmentGenerator::new(config.fraggen.clone(), su_rx, fg_tx, &mut stats);
        let hz = HierarchicalZ::new(
            config.hz.clone(),
            config.display.width,
            config.display.height,
            fg_rx,
            zst_hz_rx,
            hz_to_zst_tx,
            hz_late_tx,
            &mut stats,
        );
        let mut zstencil = Vec::new();
        for (i, ((((in_early, in_late), out_early), out_late), out_hz)) in hz_to_zst_rx
            .into_iter()
            .zip(ff_to_zst_rx)
            .zip(zst_to_interp_tx)
            .zip(zst_to_cw_tx)
            .zip(zst_hz_tx)
            .enumerate()
        {
            zstencil.push(ZStencilUnit::new(
                i as u8,
                config.zstencil.clone(),
                in_early,
                in_late,
                out_early,
                out_late,
                out_hz,
                &mut stats,
            ));
        }
        let interpolator = Interpolator::new(
            config.interpolator.clone(),
            zst_to_interp_rx,
            hz_late_rx,
            in_tx,
            &mut stats,
        );
        let ffifo = FragmentFifo::new(
            config.shader.clone(),
            st_work_rx,
            in_rx,
            ff_shaded_tx,
            ff_to_cw_tx,
            ff_to_zst_tx,
            tex_req_tx,
            tex_rep_rx,
            &mut stats,
        );
        let mut texunits = Vec::new();
        for (i, (in_req, out_rep)) in tex_req_rx.into_iter().zip(tex_rep_tx).enumerate() {
            texunits.push(TextureUnit::new(
                i as u8,
                config.texture.clone(),
                in_req,
                out_rep,
                &mut stats,
            ));
        }
        let mut colorwrite = Vec::new();
        for (i, (in_late, in_early)) in zst_to_cw_rx.into_iter().zip(ff_to_cw_rx).enumerate() {
            colorwrite.push(ColorWriteUnit::new(
                i as u8,
                config.colorwrite.clone(),
                in_early,
                in_late,
                &mut stats,
            ));
        }
        let dac = Dac {
            pending_reads: std::collections::VecDeque::new(),
            next_id: 0,
            stat_bytes: stats.counter("DAC.bytes_read"),
        };

        // The fixed clock order of the pipeline, flattened over the
        // configured unit counts. `u8` indexes cover the replicated units
        // (unit counts are small, validated configuration values).
        let mut schedule = vec![
            ScheduleEntry::Streamer,
            ScheduleEntry::PrimitiveAssembly,
            ScheduleEntry::Clipper,
            ScheduleEntry::Setup,
            ScheduleEntry::FragGen,
            ScheduleEntry::Hz,
        ];
        schedule.extend((0..zstencil.len()).map(|i| ScheduleEntry::ZStencil(i as u8)));
        schedule.push(ScheduleEntry::Interpolator);
        schedule.push(ScheduleEntry::FragmentFifo);
        schedule.extend((0..texunits.len()).map(|i| ScheduleEntry::TexUnit(i as u8)));
        schedule.extend((0..colorwrite.len()).map(|i| ScheduleEntry::ColorWrite(i as u8)));
        schedule.push(ScheduleEntry::Dac);
        schedule.push(ScheduleEntry::Memory);

        let cells = Arc::new(PureCells {
            pa: ShardCell::new(pa),
            clipper: ShardCell::new(clipper),
            setup: ShardCell::new(setup),
            fraggen: ShardCell::new(fraggen),
            hz: ShardCell::new(hz),
            interpolator: ShardCell::new(interpolator),
            ffifo: ShardCell::new(ffifo),
        });

        // Split the serial schedule between the coordinator and the worker
        // plans, recording each entry's serial position so threaded error
        // reporting can pick the same first failure a serial walk would.
        let mut coord_schedule = Vec::new();
        let mut plans: Vec<Vec<(PureKind, u32)>> = vec![Vec::new(); workers];
        for (pos, &entry) in schedule.iter().enumerate() {
            let pos = pos as u32;
            let pure = match entry {
                ScheduleEntry::PrimitiveAssembly => Some((PureKind::Pa, seg[0])),
                ScheduleEntry::Clipper => Some((PureKind::Clipper, seg[1])),
                ScheduleEntry::Setup => Some((PureKind::Setup, seg[2])),
                ScheduleEntry::FragGen => Some((PureKind::FragGen, seg[3])),
                ScheduleEntry::Hz => Some((PureKind::Hz, seg[4])),
                ScheduleEntry::Interpolator => Some((PureKind::Interpolator, seg[5])),
                ScheduleEntry::FragmentFifo => Some((PureKind::FragmentFifo, seg[6])),
                _ => None,
            };
            match pure {
                Some((kind, domain)) if workers > 0 => plans[domain].push((kind, pos)),
                _ => coord_schedule.push((entry, pos)),
            }
        }
        let pool = (workers > 0).then(|| WorkerPool::new(Arc::clone(&cells), plans));
        let effective_threads = workers + 1;

        let gpu = Gpu {
            pool,
            config,
            binder,
            stats,
            mem,
            cp,
            streamer,
            cells,
            zstencil,
            texunits,
            colorwrite,
            dac,
            cycle: 0,
            frames: 0,
            framebuffers: Vec::new(),
            max_cycles: 500_000_000,
            keep_frames: true,
            skip_idle: true,
            cycles_skipped: 0,
            horizon_backoff: 0,
            schedule: schedule.into_boxed_slice(),
            trace: None,
            fault_log: Vec::new(),
            dump_failure: None,
            checkpoint_every: None,
            checkpoint_path: None,
            next_checkpoint_at: 0,
            trace_log: Vec::new(),
            fault_injector: None,
            coord_schedule: coord_schedule.into_boxed_slice(),
            staged_drains,
            staging_enabled,
            threads: effective_threads,
        };
        if gpu.config.lint_on_start {
            let report = gpu.lint();
            if report.deny_count() > 0 {
                panic!("architecture lint failed at elaboration:\n{report}");
            }
        }
        gpu
    }

    // --- pure-box accessors ---------------------------------------------
    // All of these run on the coordinator thread during a serial phase of
    // the cycle protocol (see `crate::shard`): the workers are parked
    // between epochs, so the coordinator owns every cell and the borrow
    // checker's usual exclusivity reasoning applies to `&self`/`&mut self`.

    #[allow(unsafe_code)]
    fn pa(&self) -> &PrimitiveAssembly {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.pa.get() }
    }

    #[allow(unsafe_code)]
    fn pa_mut(&mut self) -> &mut PrimitiveAssembly {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.pa.get_mut() }
    }

    #[allow(unsafe_code)]
    fn clipper(&self) -> &Clipper {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.clipper.get() }
    }

    #[allow(unsafe_code)]
    fn clipper_mut(&mut self) -> &mut Clipper {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.clipper.get_mut() }
    }

    #[allow(unsafe_code)]
    fn setup(&self) -> &TriangleSetup {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.setup.get() }
    }

    #[allow(unsafe_code)]
    fn setup_mut(&mut self) -> &mut TriangleSetup {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.setup.get_mut() }
    }

    #[allow(unsafe_code)]
    fn fraggen(&self) -> &FragmentGenerator {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.fraggen.get() }
    }

    #[allow(unsafe_code)]
    fn fraggen_mut(&mut self) -> &mut FragmentGenerator {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.fraggen.get_mut() }
    }

    #[allow(unsafe_code)]
    fn hz(&self) -> &HierarchicalZ {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.hz.get() }
    }

    #[allow(unsafe_code)]
    fn hz_mut(&mut self) -> &mut HierarchicalZ {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.hz.get_mut() }
    }

    #[allow(unsafe_code)]
    fn interpolator(&self) -> &Interpolator {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.interpolator.get() }
    }

    #[allow(unsafe_code)]
    fn interpolator_mut(&mut self) -> &mut Interpolator {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.interpolator.get_mut() }
    }

    #[allow(unsafe_code)]
    fn ffifo(&self) -> &FragmentFifo {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.ffifo.get() }
    }

    #[allow(unsafe_code)]
    fn ffifo_mut(&mut self) -> &mut FragmentFifo {
        // SAFETY: serial-phase coordinator access (workers parked).
        unsafe { self.cells.ffifo.get_mut() }
    }

    /// Whether the threaded scheduler is live: a worker pool was spawned
    /// and the staged transport is still armed (fault injection and signal
    /// tracing drop the machine back to the serial loop, one way).
    pub fn threading_active(&self) -> bool {
        self.pool.is_some() && self.staging_enabled.get()
    }

    /// Effective clock-loop thread count (1 = serial). May be lower than
    /// the count requested from [`with_threads`](Self::with_threads): the
    /// pipeline chain bounds the useful worker count, and non-`Abort`
    /// fault policies force the serial loop.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Extracts the wired design as a [`Topology`] graph: every box with
    /// its declared interface and current event horizon, every registered
    /// signal with its live occupancy, and every statistic registration.
    pub fn topology(&self) -> Topology {
        let mut boxes = vec![
            BoxNode::new(
                "CommandProcessor",
                self.cp.work_horizon(),
                self.cp.declared_ports(),
            ),
            BoxNode::new("Streamer", self.streamer.work_horizon(), self.streamer.declared_ports()),
            BoxNode::new("PrimitiveAssembly", self.pa().work_horizon(), self.pa().declared_ports()),
            BoxNode::new(
                "Clipper",
                self.clipper().work_horizon(),
                self.clipper().declared_ports(),
            ),
            BoxNode::new(
                "TriangleSetup",
                self.setup().work_horizon(),
                self.setup().declared_ports(),
            ),
            BoxNode::new(
                "FragmentGenerator",
                self.fraggen().work_horizon(),
                self.fraggen().declared_ports(),
            ),
            BoxNode::new("HierarchicalZ", self.hz().work_horizon(), self.hz().declared_ports()),
        ];
        for (i, z) in self.zstencil.iter().enumerate() {
            boxes.push(BoxNode::new(
                format!("ZStencil{i}"),
                z.work_horizon(),
                z.declared_ports(),
            ));
        }
        boxes.push(BoxNode::new(
            "Interpolator",
            self.interpolator().work_horizon(),
            self.interpolator().declared_ports(),
        ));
        boxes.push(BoxNode::new(
            "FragmentFIFO",
            self.ffifo().work_horizon(),
            self.ffifo().declared_ports(),
        ));
        for (i, t) in self.texunits.iter().enumerate() {
            boxes.push(BoxNode::new(
                format!("Texture{i}"),
                t.work_horizon(),
                t.declared_ports(),
            ));
        }
        for (i, c) in self.colorwrite.iter().enumerate() {
            boxes.push(BoxNode::new(
                format!("ColorWrite{i}"),
                c.work_horizon(),
                c.declared_ports(),
            ));
        }
        // The memory controller and DAC talk to the pipeline through the
        // request/reply API, not signals: they are passive topology nodes.
        boxes.push(BoxNode {
            name: "MemoryController".into(),
            horizon: Some(self.mem.work_horizon()),
            ports: Vec::new(),
        });
        boxes.push(BoxNode {
            name: "DAC".into(),
            horizon: Some(self.dac.work_horizon()),
            ports: Vec::new(),
        });
        Topology {
            boxes,
            signals: self.binder.edges(),
            stat_registrations: self.stats.duplicate_registrations(),
        }
    }

    /// Runs the elaboration-time architecture verifier (see
    /// [`attila_sim::lint`]) over the wired design.
    pub fn lint(&self) -> LintReport {
        self.topology().verify()
    }

    /// The configuration the GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The signal name server (pipeline introspection).
    pub fn binder(&self) -> &SignalBinder {
        &self.binder
    }

    /// Attaches a Signal Trace Visualizer sink to every inter-box data
    /// signal and returns it. The sink retains the most recent
    /// `capacity` events (0 = unbounded — long runs will use a lot of
    /// memory, exactly why the real tool streams to disk).
    pub fn enable_signal_trace(&mut self, capacity: usize) -> attila_sim::TraceSink {
        // Trace capture happens inside the serial transport's write path;
        // staged lanes bypass it, so tracing forces the serial loop.
        self.staging_enabled.set(false);
        let sink: attila_sim::TraceSink = std::rc::Rc::new(std::cell::RefCell::new(
            attila_sim::SignalTrace::with_capacity(capacity),
        ));
        self.cp.out_draws.attach_trace(sink.clone());
        self.streamer.out_work.attach_trace(sink.clone());
        self.streamer.out_assembled.attach_trace(sink.clone());
        self.pa_mut().out_tris.attach_trace(sink.clone());
        self.clipper_mut().out_tris.attach_trace(sink.clone());
        self.setup_mut().out_tris.attach_trace(sink.clone());
        self.fraggen_mut().out_tiles.attach_trace(sink.clone());
        for p in &mut self.hz_mut().out_early {
            p.attach_trace(sink.clone());
        }
        self.hz_mut().out_late.attach_trace(sink.clone());
        for z in &mut self.zstencil {
            z.out_early.attach_trace(sink.clone());
            z.out_late.attach_trace(sink.clone());
            z.out_hz.attach_trace(sink.clone());
        }
        self.interpolator_mut().out_quads.attach_trace(sink.clone());
        self.ffifo_mut().out_shaded.attach_trace(sink.clone());
        for p in &mut self.ffifo_mut().out_color {
            p.attach_trace(sink.clone());
        }
        for p in &mut self.ffifo_mut().out_zstencil {
            p.attach_trace(sink.clone());
        }
        for p in &mut self.ffifo_mut().tex_requests {
            p.attach_trace(sink.clone());
        }
        for t in &mut self.texunits {
            t.out_replies.attach_trace(sink.clone());
        }
        // The memory controller is not signal-wired; it records one
        // `mem.ch{c}.bank{b}` event per DRAM issue directly into the sink
        // (the bank lanes of `attila viz`).
        self.mem.attach_trace(sink.clone());
        self.trace = Some(sink.clone());
        sink
    }

    /// The statistics registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// The memory controller (bandwidth statistics, functional image).
    pub fn memory(&self) -> &MemoryController {
        &self.mem
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Whether any pipeline unit (excluding the Command Processor and
    /// DAC) still holds work.
    pub fn pipeline_busy(&self) -> bool {
        self.streamer.busy()
            || self.pa().busy()
            || self.clipper().busy()
            || self.setup().busy()
            || self.fraggen().busy()
            || self.hz().busy()
            || self.zstencil.iter().any(|z| z.busy())
            || self.interpolator().busy()
            || self.ffifo().busy()
            || self.texunits.iter().any(|t| t.busy())
            || self.colorwrite.iter().any(|c| c.busy())
    }

    /// The machine-wide event horizon: the meet of every box's horizon,
    /// the memory controller's, and — the safety net — the earliest
    /// in-flight arrival on *any* registered signal, data or credit wire
    /// alike ([`SignalBinder::next_event_cycle`]). Readers verify that
    /// events are drained at their exact arrival cycle, so jumping past
    /// any arrival would surface as a spurious verification failure;
    /// folding the binder's minimum in makes the horizon conservative by
    /// construction.
    pub fn work_horizon(&self) -> Horizon {
        // `Busy` absorbs the meet, so bail out at the first busy box; the
        // CP goes first because it stays busy for as long as any command
        // that is not waiting on an upload remains queued, and the memory
        // controller next because it is the unit most often busy — `meet`
        // commutes, so probing the likely-busy units first is free and
        // usually ends the fold after two calls. The remaining boxes fold
        // in flat-schedule order — the same array the clock loop
        // dispatches from, so the horizon can never cover a unit the
        // clock does not drive (or miss one it does).
        let mut h = self.cp.work_horizon();
        if h.is_busy() {
            return Horizon::Busy;
        }
        h = h.meet(self.mem.work_horizon());
        if h.is_busy() {
            return Horizon::Busy;
        }
        for entry in &self.schedule {
            let next = match *entry {
                // Folded above, ahead of the pipeline boxes.
                ScheduleEntry::Memory => continue,
                ScheduleEntry::Streamer => self.streamer.work_horizon(),
                ScheduleEntry::PrimitiveAssembly => self.pa().work_horizon(),
                ScheduleEntry::Clipper => self.clipper().work_horizon(),
                ScheduleEntry::Setup => self.setup().work_horizon(),
                ScheduleEntry::FragGen => self.fraggen().work_horizon(),
                ScheduleEntry::Hz => self.hz().work_horizon(),
                ScheduleEntry::ZStencil(u) => self.zstencil[u as usize].work_horizon(),
                ScheduleEntry::Interpolator => self.interpolator().work_horizon(),
                ScheduleEntry::FragmentFifo => self.ffifo().work_horizon(),
                ScheduleEntry::TexUnit(u) => self.texunits[u as usize].work_horizon(),
                ScheduleEntry::ColorWrite(u) => self.colorwrite[u as usize].work_horizon(),
                ScheduleEntry::Dac => self.dac.work_horizon(),
            };
            h = h.meet(next);
            if h.is_busy() {
                return Horizon::Busy;
            }
        }
        h.meet(Horizon::from_event(self.binder.next_event_cycle()))
    }

    /// Polls the event horizon with adaptive back-off: a `Busy` verdict
    /// suppresses re-evaluation for the next `HORIZON_BACKOFF` steps.
    /// Reporting `Busy` without looking is always sound (it merely skips
    /// nothing), and idle windows worth jumping are thousands of cycles
    /// long, so the at-most-`HORIZON_BACKOFF`-cycle delay in noticing one
    /// is negligible next to the per-cycle evaluation cost it removes.
    fn poll_horizon(&mut self) -> Horizon {
        if self.horizon_backoff > 0 {
            self.horizon_backoff -= 1;
            return Horizon::Busy;
        }
        let h = self.work_horizon();
        if h.is_busy() {
            self.horizon_backoff = HORIZON_BACKOFF;
        }
        h
    }

    /// Jumps the clock to `to` without clocking anything, advancing the
    /// windowed statistics coherently (each crossed window closes with
    /// all-zero deltas, exactly as per-cycle ticking would record).
    fn skip_to(&mut self, to: Cycle) {
        if to <= self.cycle {
            return;
        }
        self.stats.skip_to(self.cycle, to);
        self.cycles_skipped += to - self.cycle;
        self.cycle = to;
    }

    /// Cycles the event-horizon scheduler jumped over so far.
    pub fn cycles_skipped(&self) -> Cycle {
        self.cycles_skipped
    }

    /// Advances simulated time by `cycles`, letting the event-horizon
    /// scheduler skip provably idle stretches when
    /// [`skip_idle`](Self::skip_idle) is set. The final cycle count and
    /// all observable state are identical to calling
    /// [`try_step`](Self::try_step) `cycles` times.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by any box's signals.
    pub fn step_many(&mut self, cycles: Cycle) -> Result<(), SimError> {
        let target = self.cycle.saturating_add(cycles);
        while self.cycle < target {
            self.try_step()?;
            if !self.skip_idle {
                continue;
            }
            match self.poll_horizon() {
                Horizon::Busy => {}
                Horizon::IdleUntil(wake) => {
                    let to = wake.min(target).max(self.cycle);
                    self.skip_to(to);
                }
                Horizon::Idle => self.skip_to(target),
            }
        }
        Ok(())
    }

    /// Clocks the whole GPU one cycle.
    ///
    /// # Panics
    ///
    /// Panics on a signal verification failure; use
    /// [`try_step`](Self::try_step) to handle faults.
    pub fn step(&mut self) {
        if let Err(e) = self.try_step() {
            panic!("simulation fault: {e}");
        }
    }

    /// Clocks the whole GPU one cycle, surfacing signal verification
    /// failures instead of panicking.
    ///
    /// The cycle counter advances *before* the boxes clock, so a failing
    /// step never replays: after an error, calling `try_step` again
    /// resumes on the next cycle (boxes the fault preempted simply skip
    /// one cycle — acceptable for a machine already known to be faulty).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by any box's signals.
    pub fn try_step(&mut self) -> Result<(), SimError> {
        if self.threading_active() {
            return self.try_step_threaded();
        }
        let cycle = self.cycle;
        self.cycle += 1;
        // `pipeline_busy` walks every box; only compute it on the cycles
        // where the CP's head command actually waits on a drained pipe.
        let idle =
            self.cp.needs_idle_probe() && !self.pipeline_busy() && !self.mem.busy();
        self.cp.clock(cycle, &mut self.mem, idle)?;
        // Drain the CP's side-effect queue in place: popping one action at
        // a time keeps the borrow local, so no per-cycle `Vec` is built.
        while let Some(action) = self.cp.actions.pop_front() {
            self.apply_action(action);
        }
        // Take the schedule out of `self` so the walk borrows it directly
        // instead of re-indexing (and re-bounds-checking) `self.schedule`
        // on every entry of the hot loop.
        let schedule = std::mem::take(&mut self.schedule);
        let mut result = Ok(());
        for &entry in schedule.iter() {
            let step = match entry {
                ScheduleEntry::Streamer => self.streamer.clock(cycle, &mut self.mem),
                ScheduleEntry::PrimitiveAssembly => self.pa_mut().clock(cycle),
                ScheduleEntry::Clipper => self.clipper_mut().clock(cycle),
                ScheduleEntry::Setup => self.setup_mut().clock(cycle),
                ScheduleEntry::FragGen => self.fraggen_mut().clock(cycle),
                ScheduleEntry::Hz => self.hz_mut().clock(cycle),
                ScheduleEntry::ZStencil(u) => {
                    self.zstencil[u as usize].clock(cycle, &mut self.mem)
                }
                ScheduleEntry::Interpolator => self.interpolator_mut().clock(cycle),
                ScheduleEntry::FragmentFifo => self.ffifo_mut().clock(cycle),
                ScheduleEntry::TexUnit(u) => {
                    self.texunits[u as usize].clock(cycle, &mut self.mem)
                }
                ScheduleEntry::ColorWrite(u) => {
                    self.colorwrite[u as usize].clock(cycle, &mut self.mem)
                }
                ScheduleEntry::Dac => {
                    self.dac.clock(cycle, &mut self.mem);
                    Ok(())
                }
                ScheduleEntry::Memory => {
                    self.mem.clock(cycle);
                    Ok(())
                }
            };
            if let Err(e) = step {
                result = Err(e);
                break;
            }
        }
        self.schedule = schedule;
        result?;
        self.stats.tick(cycle);
        Ok(())
    }

    /// One cycle under the threaded scheduler: serial prologue (Command
    /// Processor and its side effects), parallel phase (the workers clock
    /// the pipeline-chain domains while the coordinator clocks the
    /// memory-coupled boxes), barrier, then mailbox drain in fixed wiring
    /// order and the stats tick. Bit-identical to the serial walk — see
    /// DESIGN.md §18 for the argument.
    fn try_step_threaded(&mut self) -> Result<(), SimError> {
        let cycle = self.cycle;
        self.cycle += 1;
        let idle =
            self.cp.needs_idle_probe() && !self.pipeline_busy() && !self.mem.busy();
        self.cp.clock(cycle, &mut self.mem, idle)?;
        while let Some(action) = self.cp.actions.pop_front() {
            self.apply_action(action);
        }
        // lint:allow(clock-unwrap) guarded by threading_active() at the try_step dispatch
        let shared = Arc::clone(&self.pool.as_ref().expect("threaded step without a pool").shared);
        let epoch = shared.epoch.load(Ordering::Relaxed) + 1;
        shared.cycle.store(cycle, Ordering::Relaxed);
        shared.epoch.store(epoch, Ordering::Release);
        // The coordinator's own share of the cycle, while the workers run.
        let mut first_failure: Option<WorkerFailure> = None;
        let coord = std::mem::take(&mut self.coord_schedule);
        for &(entry, pos) in coord.iter() {
            let step = match entry {
                ScheduleEntry::Streamer => self.streamer.clock(cycle, &mut self.mem),
                ScheduleEntry::ZStencil(u) => {
                    self.zstencil[u as usize].clock(cycle, &mut self.mem)
                }
                ScheduleEntry::TexUnit(u) => {
                    self.texunits[u as usize].clock(cycle, &mut self.mem)
                }
                ScheduleEntry::ColorWrite(u) => {
                    self.colorwrite[u as usize].clock(cycle, &mut self.mem)
                }
                ScheduleEntry::Dac => {
                    self.dac.clock(cycle, &mut self.mem);
                    Ok(())
                }
                ScheduleEntry::Memory => {
                    self.mem.clock(cycle);
                    Ok(())
                }
                // Chain boxes never land in the coordinator schedule.
                _ => Ok(()),
            };
            if let Err(error) = step {
                first_failure = Some(WorkerFailure::Error { pos, error });
                break;
            }
        }
        self.coord_schedule = coord;
        // Barrier: wait until every worker has finished this epoch. The
        // Acquire loads pair with the workers' Release stores, handing the
        // cells (and every staged mailbox) back to the coordinator.
        for done in &shared.done {
            let mut spins = 0u32;
            while done.load(Ordering::Acquire) != epoch {
                barrier_wait(&mut spins);
            }
        }
        // Deterministic error selection: of everything that failed this
        // cycle, the failure at the smallest serial schedule position wins
        // — exactly the error a serial walk would have surfaced first.
        for slot in &shared.failures {
            // lint:allow(clock-unwrap) a poisoned slot means a worker died mid-store; unrecoverable
            if let Some(f) = slot.lock().expect("failure slot poisoned").take() {
                if first_failure.as_ref().is_none_or(|b| f.pos() < b.pos()) {
                    first_failure = Some(f);
                }
            }
        }
        match first_failure {
            Some(WorkerFailure::Panic { message, .. }) => std::panic::panic_any(message),
            Some(WorkerFailure::Error { error, .. }) => {
                // Mirror the serial early-return: the machine is aborting,
                // but flush what was latched so post-mortem counters
                // reflect every completed write.
                let _ = self.drain_staged();
                Err(error)
            }
            None => {
                self.drain_staged()?;
                self.stats.tick(cycle);
                Ok(())
            }
        }
    }

    /// Flushes every staged cross-domain mailbox into its wire, in fixed
    /// wiring order.
    fn drain_staged(&mut self) -> Result<(), SimError> {
        for drain in &mut self.staged_drains {
            drain.drain()?;
        }
        Ok(())
    }

    fn apply_action(&mut self, action: CpAction) {
        match action {
            CpAction::ClearColor { base, len, word } => {
                for c in &mut self.colorwrite {
                    c.fast_clear(&mut self.mem, base, len, word);
                }
            }
            CpAction::ClearZStencil { base, len, word } => {
                for z in &mut self.zstencil {
                    z.fast_clear(&mut self.mem, base, len, word);
                }
                let depth = (word & DEPTH_MAX) as f32 / DEPTH_MAX as f32;
                let state = self.cp.state();
                let (w, h) = (state.target_width, state.target_height);
                self.hz_mut().fast_clear_for(base, w, h, depth);
            }
            CpAction::Swap => {
                for z in &mut self.zstencil {
                    z.flush(&mut self.mem);
                }
                for c in &mut self.colorwrite {
                    c.flush(&mut self.mem);
                }
                let state = std::sync::Arc::clone(self.cp.state());
                let dump = match self.dump_framebuffer(
                    state.color_buffer,
                    state.target_width,
                    state.target_height,
                ) {
                    Ok(dump) => Some(dump),
                    Err(e) => {
                        // Surface the bad surface binding from run_trace
                        // instead of panicking inside the clock loop.
                        self.dump_failure.get_or_insert(e);
                        None
                    }
                };
                // DAC refresh traffic for the frame.
                let lines = crate::address::surface_bytes(state.target_width, state.target_height)
                    / FB_TILE_BYTES as u64;
                for l in 0..lines {
                    for piece in 0..(FB_TILE_BYTES as u64 / 64) {
                        self.dac
                            .pending_reads
                            .push_back(state.color_buffer + l * FB_TILE_BYTES as u64 + piece * 64);
                    }
                }
                if self.keep_frames {
                    self.framebuffers.extend(dump);
                }
                self.frames += 1;
            }
        }
    }

    /// Reads the (tiled) colour buffer into a row-major RGBA dump — the
    /// DAC's file output.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::BadConfig`] when the surface extends past the
    /// end of GPU memory (a corrupt render-target binding).
    pub fn dump_framebuffer(
        &self,
        base: u64,
        width: u32,
        height: u32,
    ) -> Result<FrameDump, GpuError> {
        let bytes = crate::address::surface_bytes(width, height);
        let end = base.checked_add(bytes).ok_or_else(|| {
            // lint:allow(hot-alloc) cold failure path: runs once, then the simulation aborts
            GpuError::BadConfig(format!("framebuffer at {base:#x} wraps the address space"))
        })?;
        if end > self.mem.gpu_mem().size() as u64 {
            // lint:allow(hot-alloc) cold failure path: runs once, then the simulation aborts
            return Err(GpuError::BadConfig(format!(
                "framebuffer {base:#x}..{end:#x} exceeds GPU memory                  ({} bytes)",
                self.mem.gpu_mem().size()
            )));
        }
        let mut rgba = vec![0u8; (width * height * 4) as usize];
        let image = self.mem.gpu_mem();
        for y in 0..height {
            for x in 0..width {
                let addr = pixel_address(base, width, x, y);
                let mut px = [0u8; 4];
                image.read(addr, &mut px);
                let o = ((y * width + x) * 4) as usize;
                rgba[o..o + 4].copy_from_slice(&px);
            }
        }
        Ok(FrameDump { width, height, rgba })
    }

    /// Arms a fault injector against this GPU: every signal-level plan is
    /// compiled into a hook attached (by name) to the target wire, and
    /// memory-level plans are handed to the memory controller. Also
    /// enables a small forensic signal trace so failure reports carry the
    /// last events before death.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::BadConfig`] when a plan names a signal that is
    /// not registered in this pipeline.
    pub fn arm_faults(&mut self, injector: &mut FaultInjector) -> Result<(), GpuError> {
        // Injected faults (stall windows, per-cycle hooks) consult state
        // the horizon cannot see; never skip cycles on a faulty machine.
        self.skip_idle = false;
        // Fault hooks run inside the serial transport's write path; the
        // staged lanes bypass it, so a chaos-tested machine clocks
        // serially (the pool, if any, stays parked).
        self.staging_enabled.set(false);
        let targets: Vec<String> = injector
            .plans()
            .iter()
            .filter_map(|p| p.signal().map(str::to_string))
            .collect();
        for name in targets {
            let hook = injector.signal_hook(&name).expect("plan names this signal");
            self.binder.attach_faults(&name, hook).map_err(|e| {
                GpuError::BadConfig(format!("fault plan targets an unknown signal: {e}"))
            })?;
        }
        if let Some(hook) = injector.mem_hook() {
            self.mem.inject_faults(hook);
        }
        if self.trace.is_none() {
            self.enable_signal_trace(Self::FORENSIC_TRACE_EVENTS);
        }
        Ok(())
    }

    /// Like [`arm_faults`](Self::arm_faults), but takes ownership of the
    /// injector so automatic checkpoints carry its progress (RNG
    /// position, per-hook write indices, delivery counters) and a resumed
    /// run replays the exact same fault schedule.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::BadConfig`] when a plan names a signal that is
    /// not registered in this pipeline.
    pub fn adopt_faults(&mut self, mut injector: FaultInjector) -> Result<(), GpuError> {
        self.arm_faults(&mut injector)?;
        self.fault_injector = Some(injector);
        Ok(())
    }

    /// The fault injector adopted via [`adopt_faults`](Self::adopt_faults).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault_injector.as_ref()
    }

    /// Whether the machine sits at a quiescent point: the Command
    /// Processor is at a command boundary, no box holds work, the memory
    /// controller is fully drained, the DAC has no pending refresh reads
    /// and no signal carries in-flight data or credit returns. Only at
    /// such a point is a checkpoint valid — all transient state is
    /// provably empty, so the persistent state alone reconstructs the
    /// machine exactly.
    pub fn quiescent(&self) -> bool {
        self.cp.at_command_boundary()
            && !self.pipeline_busy()
            && self.mem.fully_drained()
            && !self.dac.busy()
            && self.binder.next_event_cycle().is_none()
    }

    /// Captures a [`Checkpoint`] of the whole machine. Call only at a
    /// [`quiescent`](Self::quiescent) point; [`run_trace`](Self::run_trace)
    /// does this automatically when [`checkpoint_every`](Self::checkpoint_every)
    /// is set.
    ///
    /// # Panics
    ///
    /// Panics when the machine is not quiescent — a snapshot taken with
    /// transient state in flight could not restore faithfully.
    pub fn capture_checkpoint(&self) -> Checkpoint {
        assert!(self.quiescent(), "checkpoint requested outside a quiescent point");
        let signals = self
            .binder
            .statuses()
            .into_iter()
            .map(|s| SignalCounterState {
                name: s.name.as_str().to_string(),
                written: s.written,
                read: s.read,
                lost: s.lost,
            })
            .collect();
        let body = CheckpointBody {
            cycle: self.cycle,
            frames: self.frames,
            cycles_skipped: self.cycles_skipped,
            horizon_backoff: self.horizon_backoff,
            commands_consumed: self.cp.commands_processed(),
            memory: self.mem.gpu_mem().as_slice().to_vec(),
            framebuffers: self.framebuffers.clone(),
            mem_ctrl: self.mem.save_state(),
            cp: self.cp.save_state(),
            streamer: self.streamer.save_state(),
            pa_ids: self.pa().ids_issued(),
            setup_ids: self.setup().ids_issued(),
            fraggen_ids: self.fraggen().ids_issued(),
            hz: self.hz().save_state(),
            interpolator_next_input: self.interpolator().next_input(),
            ffifo: self.ffifo().save_state(),
            texunits: self.texunits.iter().map(TextureUnit::save_state).collect(),
            zstencil: self.zstencil.iter().map(ZStencilUnit::save_state).collect(),
            colorwrite: self.colorwrite.iter().map(ColorWriteUnit::save_state).collect(),
            dac_next_id: self.dac.next_id,
            stats: self.stats.save_state(),
            signals,
            fault: self.fault_injector.as_ref().map(FaultInjector::save_state),
        };
        Checkpoint {
            config_hash: crate::checkpoint::config_hash(&self.config),
            trace_hash: crate::checkpoint::trace_hash(&self.trace_log),
            body,
        }
    }

    /// Rebuilds a GPU from a checkpoint: validates the config and trace
    /// hashes, reconstructs the machine, loads every box's persistent
    /// state and re-enqueues the unconsumed tail of the trace. Running
    /// the restored machine (`run_trace(&[])`) finishes the original
    /// trace bit-identically to a run that never stopped.
    ///
    /// `commands` must be the *full* trace of the original run.
    /// `injector`, when the original run was chaos-tested via
    /// [`adopt_faults`](Self::adopt_faults), must carry the same seed and
    /// plans so its hooks recompile identically before their progress is
    /// restored.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] on any hash, geometry or
    /// layout mismatch.
    ///
    /// # Panics
    ///
    /// Panics when `config` itself is invalid (as [`Gpu::new`] would).
    pub fn restore(
        config: GpuConfig,
        commands: &[GpuCommand],
        ckpt: &Checkpoint,
        injector: Option<FaultInjector>,
    ) -> Result<Gpu, SimError> {
        Self::restore_with_threads(config, 1, commands, ckpt, injector)
    }

    /// Like [`restore`](Self::restore), but rebuilds the machine with a
    /// threaded clock loop ([`with_threads`](Self::with_threads)). The
    /// thread count is free to differ from the run that wrote the
    /// checkpoint — checkpoints capture only architectural state, and
    /// every thread count produces bit-identical state, so a checkpoint
    /// written at N threads restores and runs exactly the same at M.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] on any hash, geometry or
    /// layout mismatch.
    ///
    /// # Panics
    ///
    /// Panics when `config` itself is invalid (as [`Gpu::new`] would).
    pub fn restore_with_threads(
        config: GpuConfig,
        threads: usize,
        commands: &[GpuCommand],
        ckpt: &Checkpoint,
        injector: Option<FaultInjector>,
    ) -> Result<Gpu, SimError> {
        ckpt.validate_against(&config, commands)?;
        let mut gpu = Gpu::with_threads(config, threads);
        if let Some(injector) = injector {
            gpu.adopt_faults(injector).map_err(|e| SimError::CheckpointMismatch {
                reason: format!("cannot re-arm the fault injector: {e}"),
            })?;
        }
        gpu.apply_body(&ckpt.body, commands)?;
        Ok(gpu)
    }

    /// Loads a checkpoint body into a freshly built machine.
    fn apply_body(
        &mut self,
        body: &CheckpointBody,
        commands: &[GpuCommand],
    ) -> Result<(), SimError> {
        let mismatch = |reason: String| SimError::CheckpointMismatch { reason };
        let consumed = usize::try_from(body.commands_consumed)
            .map_err(|_| mismatch("absurd consumed-command count".into()))?;
        if consumed > commands.len() {
            return Err(mismatch(format!(
                "checkpoint consumed {consumed} commands but the trace has only {}",
                commands.len()
            )));
        }
        if body.memory.len() != self.mem.gpu_mem().size() {
            return Err(mismatch(format!(
                "memory image is {} bytes, this machine has {}",
                body.memory.len(),
                self.mem.gpu_mem().size()
            )));
        }
        self.mem.gpu_mem_mut().write(0, &body.memory);
        self.mem.load_state(&body.mem_ctrl)?;
        // The Command Processor's render state is not serialized (it holds
        // compiled shader programs); the last SetState among the consumed
        // commands reconstructs it exactly.
        self.cp.load_state(&body.cp);
        let state = commands[..consumed].iter().rev().find_map(|c| match c {
            GpuCommand::SetState(s) => Some(std::sync::Arc::new((**s).clone())),
            _ => None,
        });
        if let Some(state) = state {
            self.cp.restore_render_state(state);
        }
        self.cp.enqueue(commands[consumed..].iter().cloned());
        self.streamer.load_state(&body.streamer);
        self.pa_mut().restore_ids(body.pa_ids);
        self.setup_mut().restore_ids(body.setup_ids);
        self.fraggen_mut().restore_ids(body.fraggen_ids);
        self.hz_mut().load_state(&body.hz)?;
        self.interpolator_mut().restore_next_input(body.interpolator_next_input);
        self.ffifo_mut().load_state(&body.ffifo);
        if body.texunits.len() != self.texunits.len()
            || body.zstencil.len() != self.zstencil.len()
            || body.colorwrite.len() != self.colorwrite.len()
        {
            return Err(mismatch("checkpointed unit counts differ from this machine's".into()));
        }
        for (t, s) in self.texunits.iter_mut().zip(&body.texunits) {
            t.load_state(s)?;
        }
        for (z, s) in self.zstencil.iter_mut().zip(&body.zstencil) {
            z.load_state(s)?;
        }
        for (c, s) in self.colorwrite.iter_mut().zip(&body.colorwrite) {
            c.load_state(s)?;
        }
        self.dac.next_id = body.dac_next_id;
        self.stats.load_state(&body.stats)?;
        for s in &body.signals {
            let probe = self.binder.probe(&s.name).map_err(|_| {
                mismatch(format!("checkpoint names an unregistered signal `{}`", s.name))
            })?;
            probe.restore_counters(s.written, s.read, s.lost);
        }
        match (&body.fault, self.fault_injector.as_mut()) {
            (Some(fs), Some(inj)) => inj.load_state(fs)?,
            (Some(_), None) => {
                return Err(mismatch(
                    "checkpoint carries fault-injector state but no injector was supplied".into(),
                ));
            }
            (None, Some(_)) => {
                return Err(mismatch(
                    "an injector was supplied but the checkpoint carries no fault state".into(),
                ));
            }
            (None, None) => {}
        }
        self.cycle = body.cycle;
        self.frames = body.frames;
        self.cycles_skipped = body.cycles_skipped;
        self.horizon_backoff = body.horizon_backoff;
        self.framebuffers = body.framebuffers.clone();
        self.trace_log = commands.to_vec();
        // The staged lanes mirror their wire's `total_written` locally;
        // the probe restore above rewrote the core counters underneath
        // them, so re-seed every mirror.
        for drain in &mut self.staged_drains {
            drain.resync();
        }
        Ok(())
    }

    /// Faults tolerated so far under [`OnFault::Isolate`] or
    /// [`OnFault::Report`] (empty under [`OnFault::Abort`]).
    pub fn fault_log(&self) -> &[SimError] {
        &self.fault_log
    }

    /// Snapshots the machine for a post-mortem.
    pub fn failure_report(&self, error: Option<SimError>) -> FailureReport {
        let mut boxes = vec![
            BoxStatus {
                name: "CommandProcessor".into(),
                busy: !self.cp.done(),
                queued: self.cp.queued(),
            },
            BoxStatus {
                name: "Streamer".into(),
                busy: self.streamer.busy(),
                queued: self.streamer.queued(),
            },
            BoxStatus {
                name: "PrimitiveAssembly".into(),
                busy: self.pa().busy(),
                queued: self.pa().queued(),
            },
            BoxStatus {
                name: "Clipper".into(),
                busy: self.clipper().busy(),
                queued: self.clipper().queued(),
            },
            BoxStatus {
                name: "TriangleSetup".into(),
                busy: self.setup().busy(),
                queued: self.setup().queued(),
            },
            BoxStatus {
                name: "FragmentGenerator".into(),
                busy: self.fraggen().busy(),
                queued: self.fraggen().queued(),
            },
            BoxStatus {
                name: "HierarchicalZ".into(),
                busy: self.hz().busy(),
                queued: self.hz().queued(),
            },
        ];
        for (i, z) in self.zstencil.iter().enumerate() {
            boxes.push(BoxStatus {
                name: format!("ZStencil{i}"),
                busy: z.busy(),
                queued: z.queued(),
            });
        }
        boxes.push(BoxStatus {
            name: "Interpolator".into(),
            busy: self.interpolator().busy(),
            queued: self.interpolator().queued(),
        });
        boxes.push(BoxStatus {
            name: "FragmentFIFO".into(),
            busy: self.ffifo().busy(),
            queued: self.ffifo().queued(),
        });
        for (i, t) in self.texunits.iter().enumerate() {
            boxes.push(BoxStatus {
                name: format!("Texture{i}"),
                busy: t.busy(),
                queued: t.queued(),
            });
        }
        for (i, c) in self.colorwrite.iter().enumerate() {
            boxes.push(BoxStatus {
                name: format!("ColorWrite{i}"),
                busy: c.busy(),
                queued: c.queued(),
            });
        }
        boxes.push(BoxStatus {
            name: "MemoryController".into(),
            busy: self.mem.busy(),
            queued: 0,
        });
        boxes.push(BoxStatus {
            name: "DAC".into(),
            busy: self.dac.busy(),
            queued: self.dac.pending_reads.len(),
        });
        let recent_events = self
            .trace
            .as_ref()
            .map(|t| t.borrow().events().to_vec())
            .unwrap_or_default();
        FailureReport {
            cycle: self.cycle,
            error,
            boxes,
            signals: self.binder.statuses(),
            recent_events,
            topology: Some(self.topology().summary()),
        }
    }

    /// Runs a command trace to completion.
    ///
    /// Signal verification failures are dispatched through the
    /// configuration's [`OnFault`] policy: `Abort` stops with
    /// [`GpuError::Sim`] and a full [`FailureReport`]; `Isolate` degrades
    /// the offending signal to lossy delivery and keeps running;
    /// `Report` records the fault (see [`fault_log`](Self::fault_log))
    /// and keeps running.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::Watchdog`] if the pipeline fails to drain
    /// within [`max_cycles`](Self::max_cycles), [`GpuError::Sim`] on an
    /// aborting verification failure, and [`GpuError::BadConfig`] when a
    /// swap dumps an out-of-range framebuffer.
    pub fn run_trace(&mut self, commands: &[GpuCommand]) -> Result<RunResult, GpuError> {
        self.cp.enqueue(commands.iter().cloned());
        let start_cycle = self.cycle;
        let start_frames = self.frames;
        let limit = start_cycle + self.max_cycles;
        if let Some(every) = self.checkpoint_every {
            self.trace_log.extend(commands.iter().cloned());
            self.next_checkpoint_at = self.cycle + every;
        }
        while !(self.cp.done() && !self.pipeline_busy() && !self.mem.busy() && !self.dac.busy())
        {
            if self.cycle >= limit {
                return Err(GpuError::Watchdog {
                    limit: self.max_cycles,
                    report: Box::new(self.failure_report(None)),
                });
            }
            if let Err(e) = self.try_step() {
                match self.config.on_fault {
                    OnFault::Abort => {
                        return Err(GpuError::Sim {
                            report: Box::new(self.failure_report(Some(e.clone()))),
                            error: e,
                        });
                    }
                    OnFault::Isolate => {
                        // Degrade exactly the wire that failed; it keeps
                        // flowing, dropping what it cannot carry.
                        if let Some(signal) = e.signal() {
                            let _ = self.binder.set_lossy(signal, true);
                        }
                        self.fault_log.push(e);
                    }
                    OnFault::Report => self.fault_log.push(e),
                }
            } else if self.skip_idle {
                // Event-horizon skip: with everything idle until a known
                // wake-up cycle, jump there. Clamped to the watchdog limit
                // so expiry fires at exactly the same cycle as per-cycle
                // clocking would; a fully `Idle` horizon is left to the
                // loop condition (drained → exit) or the watchdog
                // (deadlock) rather than jumped.
                if let Horizon::IdleUntil(wake) = self.poll_horizon() {
                    let to = wake.min(limit).max(self.cycle);
                    self.skip_to(to);
                }
            }
            if let Some(e) = self.dump_failure.take() {
                return Err(e);
            }
            if let Some(every) = self.checkpoint_every {
                if self.cycle >= self.next_checkpoint_at && self.quiescent() {
                    if let Some(path) = self.checkpoint_path.clone() {
                        let ckpt = self.capture_checkpoint();
                        if let Err(error) = ckpt.write_file(&path) {
                            return Err(GpuError::Sim {
                                report: Box::new(self.failure_report(Some(error.clone()))),
                                error,
                            });
                        }
                    }
                    self.next_checkpoint_at = self.cycle + every;
                }
            }
        }
        Ok(RunResult {
            cycles: self.cycle - start_cycle,
            frames: self.frames - start_frames,
            framebuffers: std::mem::take(&mut self.framebuffers),
        })
    }

    /// Aggregate texture-cache statistics `(hits, misses, hit_rate)` over
    /// the TU pool — the Figure 8 metric.
    pub fn texture_cache_stats(&self) -> (u64, u64, f64) {
        let hits: u64 = self.texunits.iter().map(|t| t.cache().hits()).sum();
        let misses: u64 = self.texunits.iter().map(|t| t.cache().misses()).sum();
        let rate = if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        (hits, misses, rate)
    }

    /// Total bytes the texture units fetched from memory (Figure 8's
    /// texture bandwidth).
    pub fn texture_bytes_read(&self) -> u64 {
        self.texunits.iter().map(|t| t.bytes_read()).sum()
    }

    /// Per-shader-unit busy cycles (Figure 9's shader utilization).
    pub fn shader_busy_cycles(&self) -> Vec<u64> {
        self.ffifo().unit_busy_cycles()
    }

    /// Per-texture-unit busy cycles (Figure 9's TU utilization).
    pub fn texture_busy_cycles(&self) -> Vec<u64> {
        self.texunits.iter().map(|t| t.busy_cycles()).collect()
    }

    /// A human-readable end-of-run summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cycles:              {}", self.cycle);
        let _ = writeln!(out, "frames:              {}", self.frames);
        let _ = writeln!(out, "draws:               {}", self.cp.draws_issued());
        let _ = writeln!(out, "vertices:            {}", self.streamer.vertices_issued());
        let _ = writeln!(out, "vertex cache hits:   {}", self.streamer.vertex_cache_hits());
        let _ = writeln!(out, "triangles assembled: {}", self.pa().triangles_assembled());
        let _ = writeln!(out, "triangles rejected:  {}", self.clipper().rejected());
        let _ = writeln!(out, "faces culled:        {}", self.setup().face_culled());
        let _ = writeln!(out, "fragments generated: {}", self.fraggen().fragments_generated());
        let _ = writeln!(out, "HZ tiles rejected:   {}", self.hz().tiles_rejected());
        let z_tested: u64 = self.zstencil.iter().map(|z| z.fragments_tested()).sum();
        let z_passed: u64 = self.zstencil.iter().map(|z| z.fragments_passed()).sum();
        let _ = writeln!(out, "Z tested / passed:   {z_tested} / {z_passed}");
        let _ = writeln!(out, "fragments shaded:    {}", self.ffifo().fragments_shaded());
        let written: u64 = self.colorwrite.iter().map(|c| c.fragments_written()).sum();
        let _ = writeln!(out, "fragments written:   {written}");
        let (h, m, r) = self.texture_cache_stats();
        let _ = writeln!(out, "texture cache:       {h} hits, {m} misses ({:.1}%)", r * 100.0);
        let _ = writeln!(out, "texture bandwidth:   {} bytes", self.texture_bytes_read());
        let _ = writeln!(
            out,
            "memory read/written: {} / {} bytes",
            self.mem.bytes_read(),
            self.mem.bytes_written()
        );
        let _ = writeln!(
            out,
            "DRAM row buffer:     {} hits, {} misses, {} conflicts, {} turnarounds",
            self.mem.row_hits(),
            self.mem.row_misses(),
            self.mem.row_conflicts(),
            self.mem.turnarounds()
        );
        out
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("cycle", &self.cycle)
            .field("frames", &self.frames)
            .field("signals", &self.binder.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fps_is_zero_for_empty_runs() {
        let r = RunResult { cycles: 0, frames: 0, framebuffers: Vec::new() };
        assert_eq!(r.fps(400), 0.0, "zero cycles must not divide by zero");
        let r = RunResult { cycles: 0, frames: 3, framebuffers: Vec::new() };
        assert_eq!(r.fps(400), 0.0, "frames with zero cycles is degenerate");
        let r = RunResult { cycles: 1_000_000, frames: 0, framebuffers: Vec::new() };
        assert_eq!(r.fps(400), 0.0, "no frames means no rate");
    }

    #[test]
    fn fps_counts_frames_per_simulated_second() {
        // 4M cycles at 400 MHz is 10 ms of simulated time; 60 frames in
        // 10 ms is 6000 frames per second.
        let r = RunResult { cycles: 4_000_000, frames: 60, framebuffers: Vec::new() };
        assert!((r.fps(400) - 6000.0).abs() < 1e-9);
    }
}
