//! The Command Processor.
//!
//! "The Command Processor is the unit that controls the whole pipeline,
//! receiving and processing the commands sent by the system CPU. The
//! Command Processor's tasks are to control the rendering of batches and
//! handle buffer writes (textures, vertex and index buffers) from system
//! memory to GPU memory. Our current implementation allows to pipeline
//! render state changes and buffer writes concurrently with rendering a
//! batch." (§2.2)
//!
//! Fast clears and `Swap` synchronize with the pipeline (they touch
//! buffers in use); draws pipeline freely — the Streamer's input queue
//! lets one batch run its fragment phase while the next starts its
//! geometry phase, the two-batch overlap the paper describes.

use std::collections::VecDeque;
use std::sync::Arc;

use attila_mem::MemoryController;
use attila_sim::{Counter, Cycle, SimError};

use crate::commands::{DrawCall, GpuCommand};
use crate::port::PortSender;
use crate::state::RenderState;
use crate::types::Batch;

/// Side effects the Command Processor asks the top-level GPU to apply
/// (they touch units the CP has no wires to: ROP caches, HZ, DAC).
#[derive(Debug, Clone, PartialEq)]
pub enum CpAction {
    /// Fast clear of the colour buffer.
    ClearColor {
        /// Buffer base address.
        base: u64,
        /// Buffer length in bytes.
        len: u64,
        /// RGBA8 clear word.
        word: u32,
    },
    /// Fast clear of the Z/stencil buffer.
    ClearZStencil {
        /// Buffer base address.
        base: u64,
        /// Buffer length in bytes.
        len: u64,
        /// S8Z24 clear word.
        word: u32,
    },
    /// End of frame: flush ROP caches and dump the framebuffer.
    Swap,
}

/// Plain-data snapshot of the Command Processor's persistent state, for
/// checkpointing. Captured only at a quiescent point, so the transient
/// queues (pending actions, in-flight uploads) are empty by construction
/// and never appear here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandProcessorState {
    /// Next system-upload request id.
    pub next_upload_id: u64,
    /// Next draw-batch id.
    pub next_batch_id: u64,
    /// Datapath (early/late Z) of the last issued draw, if any.
    pub last_draw_early: Option<bool>,
}

/// The Command Processor box.
#[derive(Debug)]
pub struct CommandProcessor {
    commands: VecDeque<GpuCommand>, // state: external — the frame driver requeues unconsumed commands on restore
    /// Draw batches to the Streamer.
    pub out_draws: PortSender<Arc<Batch>>,
    state: Arc<RenderState>, // state: derived — rebuilt by replaying the last SetState (see restore_render_state)
    /// Cycles the current command still needs before completing.
    stall_cycles: Cycle, // state: transient — zero at the command-boundary checkpoint
    outstanding_uploads: usize, // state: transient — zero at the command-boundary checkpoint
    next_upload_id: u64,
    next_batch_id: u64,
    /// Side effects for the top level to apply this cycle.
    pub actions: VecDeque<CpAction>, // state: transient — empty at the command-boundary checkpoint
    /// Whether the last issued draw used the early-Z datapath; flipping
    /// datapaths inserts a pipeline barrier (two batches on different
    /// datapaths could otherwise test/write the same pixel out of order).
    last_draw_early: Option<bool>,
    stat_commands: Counter,
    stat_draws: Counter,
    stat_state_changes: Counter,
    stat_upload_bytes: Counter,
}

impl CommandProcessor {
    /// Cycles charged for a register-state update.
    const STATE_CHANGE_COST: Cycle = 8;
    /// Cycles charged for preloading shader instruction memory.
    const PROGRAM_LOAD_COST: Cycle = 32;
    /// Cycles charged for a fast clear (performed "in a few cycles").
    const FAST_CLEAR_COST: Cycle = 4;

    /// Builds the Command Processor.
    pub fn new(out_draws: PortSender<Arc<Batch>>, stats: &mut attila_sim::StatsRegistry) -> Self {
        CommandProcessor {
            commands: VecDeque::new(),
            out_draws,
            state: Arc::new(RenderState::default()),
            stall_cycles: 0,
            outstanding_uploads: 0,
            next_upload_id: 0,
            next_batch_id: 0,
            actions: VecDeque::new(),
            last_draw_early: None,
            stat_commands: stats.counter("CommandProcessor.commands"),
            stat_draws: stats.counter("CommandProcessor.draws"),
            stat_state_changes: stats.counter("CommandProcessor.state_changes"),
            stat_upload_bytes: stats.counter("CommandProcessor.upload_bytes"),
        }
    }

    /// Appends commands to the stream.
    pub fn enqueue(&mut self, commands: impl IntoIterator<Item = GpuCommand>) {
        self.commands.extend(commands);
    }

    /// The current render state (tests and the golden model share it).
    pub fn state(&self) -> &Arc<RenderState> {
        &self.state
    }

    /// Advances the Command Processor one cycle. `pipeline_idle` reports
    /// whether every downstream box has drained (needed by clears/swap).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(
        &mut self,
        cycle: Cycle,
        mem: &mut MemoryController,
        pipeline_idle: bool,
    ) -> Result<(), SimError> {
        self.out_draws.try_update(cycle)?;
        while mem.pop_finished_upload().is_some() {
            self.outstanding_uploads -= 1;
        }
        if self.stall_cycles > 0 {
            self.stall_cycles -= 1;
            return Ok(());
        }
        let Some(cmd) = self.commands.front() else { return Ok(()) };
        match cmd {
            GpuCommand::SetState(_) => {
                let Some(GpuCommand::SetState(s)) = self.commands.pop_front() else {
                    unreachable!() // lint:allow(clock-unwrap) variant excluded by the surrounding match
                };
                self.state = Arc::new(*s);
                self.stall_cycles = Self::STATE_CHANGE_COST;
                self.stat_state_changes.inc();
                self.stat_commands.inc();
            }
            GpuCommand::LoadPrograms => {
                self.commands.pop_front();
                self.stall_cycles = Self::PROGRAM_LOAD_COST;
                self.stat_commands.inc();
            }
            GpuCommand::WriteBuffer { .. } => {
                let Some(GpuCommand::WriteBuffer { address, data }) = self.commands.pop_front()
                else {
                    unreachable!() // lint:allow(clock-unwrap) variant excluded by the surrounding match
                };
                let id = self.next_upload_id;
                self.next_upload_id += 1;
                self.stat_upload_bytes.add(data.len() as u64);
                let bytes = Arc::try_unwrap(data).unwrap_or_else(|a| (*a).clone());
                mem.submit_system_upload(cycle, id, address, bytes);
                self.outstanding_uploads += 1;
                self.stat_commands.inc();
            }
            GpuCommand::Draw(_) => {
                // Draws wait for uploads they may depend on, and for a
                // free slot in the Streamer's batch queue. A draw that
                // switches between the early- and late-Z datapaths also
                // waits for the pipeline to drain: the Fragment FIFO's
                // two datapaths do not preserve ordering across batches.
                let early = self.state.early_z();
                if self.outstanding_uploads > 0 || !self.out_draws.can_send(cycle) {
                    return Ok(());
                }
                if self.last_draw_early.is_some_and(|prev| prev != early) && !pipeline_idle {
                    return Ok(());
                }
                self.last_draw_early = Some(early);
                let Some(GpuCommand::Draw(draw)) = self.commands.pop_front() else {
                    unreachable!() // lint:allow(clock-unwrap) variant excluded by the surrounding match
                };
                let batch = Arc::new(Batch {
                    id: self.next_batch_id,
                    state: Arc::clone(&self.state),
                    draw: DrawCall { ..draw },
                });
                self.next_batch_id += 1;
                self.out_draws.try_send(cycle, batch)?;
                self.stat_draws.inc();
                self.stat_commands.inc();
            }
            GpuCommand::FastClearColor(word) => {
                if !pipeline_idle || self.outstanding_uploads > 0 {
                    return Ok(());
                }
                let word = *word;
                self.commands.pop_front();
                let len = crate::address::surface_bytes(
                    self.state.target_width,
                    self.state.target_height,
                );
                self.actions.push_back(CpAction::ClearColor {
                    base: self.state.color_buffer,
                    len,
                    word,
                });
                self.stall_cycles = Self::FAST_CLEAR_COST;
                self.stat_commands.inc();
            }
            GpuCommand::FastClearZStencil(word) => {
                if !pipeline_idle || self.outstanding_uploads > 0 {
                    return Ok(());
                }
                let word = *word;
                self.commands.pop_front();
                let len = crate::address::surface_bytes(
                    self.state.target_width,
                    self.state.target_height,
                );
                self.actions.push_back(CpAction::ClearZStencil {
                    base: self.state.z_buffer,
                    len,
                    word,
                });
                self.stall_cycles = Self::FAST_CLEAR_COST;
                self.stat_commands.inc();
            }
            GpuCommand::Swap => {
                if !pipeline_idle || self.outstanding_uploads > 0 {
                    return Ok(());
                }
                self.commands.pop_front();
                self.actions.push_back(CpAction::Swap);
                self.last_draw_early = None;
                self.stat_commands.inc();
            }
        }
        Ok(())
    }

    /// Whether this cycle's [`clock`](Self::clock) call will consult its
    /// `pipeline_idle` argument: only fast clears, `Swap`, and draws that
    /// switch between the early- and late-Z datapaths wait for the
    /// pipeline to drain. Letting the top level skip the whole-pipeline
    /// busy walk on every other cycle keeps the probe off the hot path.
    pub fn needs_idle_probe(&self) -> bool {
        if self.stall_cycles > 0 {
            return false;
        }
        match self.commands.front() {
            Some(
                GpuCommand::FastClearColor(_) | GpuCommand::FastClearZStencil(_) | GpuCommand::Swap,
            ) => true,
            Some(GpuCommand::Draw(_)) => {
                self.last_draw_early.is_some_and(|prev| prev != self.state.early_z())
            }
            _ => false,
        }
    }

    /// Commands still waiting in the stream.
    pub fn queued(&self) -> usize {
        self.commands.len()
    }

    /// Whether every command has been processed and all uploads landed.
    pub fn done(&self) -> bool {
        self.commands.is_empty() && self.outstanding_uploads == 0 && self.stall_cycles == 0
    }

    /// The box's event horizon (see [`attila_sim::Horizon`]).
    ///
    /// The CP is busy while it is stalled on a command cost, has pending
    /// side effects for the top level, or could make progress on the
    /// command stream this cycle. Only draws, fast clears and `Swap` wait
    /// behind outstanding uploads — with one of those at the head of the
    /// stream the CP is *idle*: the memory controller owns the wake-up
    /// (its system-bus copy horizon), and while finished uploads wait to
    /// be acknowledged the controller reports busy, which keeps the CP
    /// clocked until `outstanding_uploads` drains.
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if self.stall_cycles > 0 || !self.actions.is_empty() {
            return attila_sim::Horizon::Busy;
        }
        match self.commands.front() {
            None => attila_sim::Horizon::Idle,
            Some(
                GpuCommand::Draw(_)
                | GpuCommand::FastClearColor(_)
                | GpuCommand::FastClearZStencil(_)
                | GpuCommand::Swap,
            ) if self.outstanding_uploads > 0 => attila_sim::Horizon::Idle,
            Some(_) => attila_sim::Horizon::Busy,
        }
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![self.out_draws.decl()]
    }

    /// Whether the CP sits at a command boundary: no command mid-execution,
    /// no uploads in flight, no side effects pending. Weaker than
    /// [`done`](Self::done) — commands may still be queued — and exactly the
    /// condition under which a checkpoint can cut the command stream at
    /// [`commands_processed`](Self::commands_processed).
    pub fn at_command_boundary(&self) -> bool {
        self.stall_cycles == 0 && self.outstanding_uploads == 0 && self.actions.is_empty()
    }

    /// Captures the CP's persistent state for checkpointing. Only valid at
    /// a [command boundary](Self::at_command_boundary), where the queue of
    /// unprocessed commands plus these three fields fully determine the
    /// box's future behaviour.
    pub fn save_state(&self) -> CommandProcessorState {
        CommandProcessorState {
            next_upload_id: self.next_upload_id,
            next_batch_id: self.next_batch_id,
            last_draw_early: self.last_draw_early,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state).
    pub fn load_state(&mut self, state: &CommandProcessorState) {
        self.next_upload_id = state.next_upload_id;
        self.next_batch_id = state.next_batch_id;
        self.last_draw_early = state.last_draw_early;
    }

    /// Overwrites the current render state; used on restore, where the
    /// state is reconstructed by replaying the last `SetState` among the
    /// already-consumed commands.
    pub fn restore_render_state(&mut self, state: Arc<RenderState>) {
        self.state = state;
    }

    /// Commands processed so far.
    pub fn commands_processed(&self) -> u64 {
        self.stat_commands.value()
    }

    /// Draw batches issued so far.
    pub fn draws_issued(&self) -> u64 {
        self.stat_draws.value()
    }
}
