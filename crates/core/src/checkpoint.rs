//! Crash-safe checkpoint / restore.
//!
//! A checkpoint is a snapshot of the whole machine taken at a *quiescent
//! point*: the Command Processor sits at a command boundary, every
//! pipeline box is drained, the memory controller has no work in flight
//! and no signal carries data or credit returns. At such a point the only
//! state that exists is *persistent* state — counters, caches, register
//! files, the memory image — and that is exactly what the checkpoint
//! carries. Transient state (objects on wires, partially processed
//! batches) is provably empty and never serialized.
//!
//! # File format
//!
//! One JSON object, written through the in-repo `attila-json`:
//!
//! ```text
//! {
//!   "magic":       "ATTILA-CKPT",
//!   "version":     1,
//!   "config_hash": "<fnv1a64 of the config's JSON, hex>",
//!   "trace_hash":  "<fnv1a64 of the canonical trace encoding, hex>",
//!   "body_crc":    <crc32 of the body's compact rendering>,
//!   "body":        { ... the machine state ... }
//! }
//! ```
//!
//! Restore refuses the file — with a typed
//! [`SimError::CheckpointMismatch`] — when the magic is wrong, the CRC
//! does not match (truncated or corrupted file), or the config/trace
//! hashes differ from the run being resumed. An unreadable format version
//! gets its own [`SimError::CheckpointVersion`] variant carrying the
//! version found in the file, so quarantine reports can say exactly which
//! format was rejected. A resumed run
//! is bit-identical to one that never stopped; the differential tests in
//! `tests/checkpoint_roundtrip.rs` prove it across seeds, checkpoint
//! cycles and active fault injection.
//!
//! `u64` values are serialized as 16-digit hex strings because the JSON
//! number line (`f64`) is only exact up to ±2^53; Hierarchical-Z entries
//! travel as `f32::to_bits` words for the same reason (the buffer's
//! `+inf` poison value has no JSON rendering at all). Bulk bytes — the
//! memory image, framebuffer dumps — use a run-length encoding
//! (`[count, value, count, value, ...]`) that collapses the zero oceans
//! of a fresh image.

use std::path::Path;

use attila_json::Json;
use attila_mem::{
    BankFsm, BankSnapshot, BlockState, CacheLineState, CacheState, Client, Direction, GddrState,
    MemControllerState, RopCacheState,
};
use attila_sim::{
    FaultInjectorState, MemFaultsState, SignalFaultsState, SimError, StatSnapshotEntry,
    StatsSnapshot,
};

use crate::colorwrite::ColorWriteState;
use crate::command_processor::CommandProcessorState;
use crate::commands::GpuCommand;
use crate::config::GpuConfig;
use crate::ffifo::FragmentFifoState;
use crate::gpu::FrameDump;
use crate::hz::HzState;
use crate::streamer::StreamerState;
use crate::texunit::TextureUnitState;
use crate::zstencil::ZStencilState;

/// File magic: the first field of every checkpoint.
pub const MAGIC: &str = "ATTILA-CKPT";

/// Current checkpoint format version. Bump on any body-layout change;
/// restore refuses older or newer versions outright.
///
/// Version history: 1 = flat open-page DRAM state; 2 = per-bank FSM
/// snapshots (`banks` replaces `open_pages` in each channel).
pub const FORMAT_VERSION: u64 = 2;

// ---------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------

/// Streaming FNV-1a 64-bit hasher (dependency-free, deterministic).
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0xff]); // field separator
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a-64 over the config's compact JSON rendering: two configs hash
/// equal exactly when every one of their ~100 parameters matches.
pub fn config_hash(config: &GpuConfig) -> u64 {
    let json = <GpuConfig as attila_json::ToJson>::to_json(config);
    let mut h = Fnv::new();
    h.write_bytes(json.render().as_bytes());
    h.finish()
}

/// FNV-1a-64 over a canonical per-command encoding of the trace: the
/// mnemonic plus every timing-relevant field, including the full payload
/// bytes of buffer uploads. A checkpoint taken against one trace refuses
/// to restore against another.
pub fn trace_hash(commands: &[GpuCommand]) -> u64 {
    let mut h = Fnv::new();
    for c in commands {
        h.write_str(c.mnemonic());
        match c {
            GpuCommand::SetState(s) => {
                h.write_u32(s.target_width);
                h.write_u32(s.target_height);
                h.write_u64(s.color_buffer);
                h.write_u64(s.z_buffer);
                h.write_u32(s.varying_count);
                h.write_u32(s.cull as u32);
                h.write_u32(u32::from(s.depth.enabled));
                h.write_u32(u32::from(s.blend.enabled));
            }
            GpuCommand::WriteBuffer { address, data } => {
                h.write_u64(*address);
                h.write_u64(data.len() as u64);
                h.write_bytes(data);
            }
            GpuCommand::LoadPrograms | GpuCommand::Swap => {}
            GpuCommand::Draw(d) => {
                h.write_u32(d.primitive as u32);
                h.write_u32(d.vertex_count);
                h.write_u32(u32::from(d.index_buffer.is_some()));
                h.write_u64(d.index_buffer.unwrap_or(0));
            }
            GpuCommand::FastClearColor(v) | GpuCommand::FastClearZStencil(v) => {
                h.write_u32(*v);
            }
        }
    }
    h.finish()
}

/// CRC-32 (IEEE 802.3 polynomial) over `bytes`.
fn crc32(bytes: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        *slot = c;
    }
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// JSON helpers
// ---------------------------------------------------------------------

fn mismatch(reason: impl Into<String>) -> SimError {
    SimError::CheckpointMismatch { reason: reason.into() }
}

fn hex64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn parse_hex64(j: &Json, what: &str) -> Result<u64, SimError> {
    let Json::Str(s) = j else {
        return Err(mismatch(format!("{what}: expected hex string, got {}", j.type_name())));
    };
    u64::from_str_radix(s, 16).map_err(|_| mismatch(format!("{what}: bad hex string `{s}`")))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, SimError> {
    obj.get(key).ok_or_else(|| mismatch(format!("missing field `{key}`")))
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, SimError> {
    parse_hex64(field(obj, key)?, key)
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, SimError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| mismatch(format!("field `{key}` is not a number")))
}

fn get_small(obj: &Json, key: &str) -> Result<u64, SimError> {
    let v = get_f64(obj, key)?;
    if v < 0.0 || v.fract() != 0.0 || v > 2f64.powi(53) {
        return Err(mismatch(format!("field `{key}` is not a small non-negative integer")));
    }
    Ok(v as u64)
}

fn get_u32(obj: &Json, key: &str) -> Result<u32, SimError> {
    u32::try_from(get_small(obj, key)?)
        .map_err(|_| mismatch(format!("field `{key}` overflows u32")))
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, SimError> {
    usize::try_from(get_small(obj, key)?)
        .map_err(|_| mismatch(format!("field `{key}` overflows usize")))
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, SimError> {
    match field(obj, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(mismatch(format!("field `{key}` is not a bool, got {}", other.type_name()))),
    }
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, SimError> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| mismatch(format!("field `{key}` is not a string")))
}

fn get_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], SimError> {
    match field(obj, key)? {
        Json::Arr(items) => Ok(items),
        other => Err(mismatch(format!("field `{key}` is not an array, got {}", other.type_name()))),
    }
}

fn num(v: impl Into<f64>) -> Json {
    Json::Num(v.into())
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

// ---------------------------------------------------------------------
// Run-length byte encoding
// ---------------------------------------------------------------------

/// Encodes bytes as a flat `[count, value, count, value, ...]` array.
fn rle_encode(bytes: &[u8]) -> Json {
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let v = bytes[i];
        let mut n = 1u64;
        while i + (n as usize) < bytes.len() && bytes[i + n as usize] == v {
            n += 1;
        }
        out.push(Json::Num(n as f64));
        out.push(Json::Num(v as f64));
        i += n as usize;
    }
    Json::Arr(out)
}

/// Decodes a [`rle_encode`] array, checking the total length.
fn rle_decode(j: &Json, expected_len: usize, what: &str) -> Result<Vec<u8>, SimError> {
    let Json::Arr(items) = j else {
        return Err(mismatch(format!("{what}: RLE payload is not an array")));
    };
    if items.len() % 2 != 0 {
        return Err(mismatch(format!("{what}: RLE payload has odd length")));
    }
    let mut out = Vec::with_capacity(expected_len);
    for pair in items.chunks(2) {
        let n = pair[0]
            .as_f64()
            .filter(|v| *v >= 1.0 && v.fract() == 0.0)
            .ok_or_else(|| mismatch(format!("{what}: bad RLE count")))?;
        let v = pair[1]
            .as_f64()
            .filter(|v| (0.0..=255.0).contains(v) && v.fract() == 0.0)
            .ok_or_else(|| mismatch(format!("{what}: bad RLE value")))?;
        if out.len() + n as usize > expected_len {
            return Err(mismatch(format!("{what}: RLE payload longer than {expected_len} bytes")));
        }
        out.resize(out.len() + n as usize, v as u8);
    }
    if out.len() != expected_len {
        return Err(mismatch(format!(
            "{what}: RLE payload is {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// State-struct conversions
// ---------------------------------------------------------------------

fn cache_to_json(s: &CacheState) -> Json {
    let lines = s
        .lines
        .iter()
        .map(|l| {
            obj(vec![
                ("tag", hex64(l.tag)),
                ("valid", Json::Bool(l.valid)),
                ("dirty", Json::Bool(l.dirty)),
                ("last_use", hex64(l.last_use)),
            ])
        })
        .collect();
    obj(vec![
        ("lines", Json::Arr(lines)),
        ("access_counter", hex64(s.access_counter)),
        ("hits", hex64(s.hits)),
        ("misses", hex64(s.misses)),
        ("blocked", hex64(s.blocked)),
    ])
}

fn cache_from_json(j: &Json) -> Result<CacheState, SimError> {
    let mut lines = Vec::new();
    for l in get_arr(j, "lines")? {
        lines.push(CacheLineState {
            tag: get_u64(l, "tag")?,
            valid: get_bool(l, "valid")?,
            dirty: get_bool(l, "dirty")?,
            last_use: get_u64(l, "last_use")?,
        });
    }
    Ok(CacheState {
        lines,
        access_counter: get_u64(j, "access_counter")?,
        hits: get_u64(j, "hits")?,
        misses: get_u64(j, "misses")?,
        blocked: get_u64(j, "blocked")?,
    })
}

fn block_state_to_json(b: &BlockState) -> Json {
    match b {
        BlockState::Cleared => Json::Str("C".into()),
        BlockState::Uncompressed => Json::Str("U".into()),
        BlockState::Compressed { bytes } => num(*bytes),
    }
}

fn block_state_from_json(j: &Json) -> Result<BlockState, SimError> {
    match j {
        Json::Str(s) if s == "C" => Ok(BlockState::Cleared),
        Json::Str(s) if s == "U" => Ok(BlockState::Uncompressed),
        Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 => {
            Ok(BlockState::Compressed { bytes: *v as u32 })
        }
        other => Err(mismatch(format!("bad block state: {}", other.render()))),
    }
}

fn rop_cache_to_json(s: &RopCacheState) -> Json {
    obj(vec![
        ("cache", cache_to_json(&s.cache)),
        ("base", hex64(s.base)),
        ("len", hex64(s.len)),
        ("blocks", Json::Arr(s.block_states.iter().map(block_state_to_json).collect())),
        ("clear_word", num(s.clear_word)),
        ("bytes_transferred", hex64(s.bytes_transferred)),
        ("bytes_uncompressed_equiv", hex64(s.bytes_uncompressed_equiv)),
        ("fast_clears", hex64(s.fast_clears)),
    ])
}

fn rop_cache_from_json(j: &Json) -> Result<RopCacheState, SimError> {
    let block_states = get_arr(j, "blocks")?
        .iter()
        .map(block_state_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RopCacheState {
        cache: cache_from_json(field(j, "cache")?)?,
        base: get_u64(j, "base")?,
        len: get_u64(j, "len")?,
        block_states,
        clear_word: get_u32(j, "clear_word")?,
        bytes_transferred: get_u64(j, "bytes_transferred")?,
        bytes_uncompressed_equiv: get_u64(j, "bytes_uncompressed_equiv")?,
        fast_clears: get_u64(j, "fast_clears")?,
    })
}

/// Bank FSM state as a compact tagged array: `"I"` (idle),
/// `["A", row]` (active), `["G", row, ready_at]` (activating — "going
/// active"), `["P", ready_at]` (precharging).
fn bank_fsm_to_json(s: &BankFsm) -> Json {
    match s {
        BankFsm::Idle => Json::Str("I".into()),
        BankFsm::Active { row } => Json::Arr(vec![Json::Str("A".into()), hex64(*row)]),
        BankFsm::Activating { row, ready_at } => {
            Json::Arr(vec![Json::Str("G".into()), hex64(*row), hex64(*ready_at)])
        }
        BankFsm::Precharging { ready_at } => {
            Json::Arr(vec![Json::Str("P".into()), hex64(*ready_at)])
        }
    }
}

fn bank_fsm_from_json(j: &Json) -> Result<BankFsm, SimError> {
    let bad = || mismatch(format!("bad bank state: {}", j.render()));
    match j {
        Json::Str(s) if s == "I" => Ok(BankFsm::Idle),
        Json::Arr(parts) => {
            let Some(Json::Str(tag)) = parts.first() else { return Err(bad()) };
            match (tag.as_str(), parts.len()) {
                ("A", 2) => Ok(BankFsm::Active { row: parse_hex64(&parts[1], "bank row")? }),
                ("G", 3) => Ok(BankFsm::Activating {
                    row: parse_hex64(&parts[1], "bank row")?,
                    ready_at: parse_hex64(&parts[2], "bank ready_at")?,
                }),
                ("P", 2) => {
                    Ok(BankFsm::Precharging { ready_at: parse_hex64(&parts[1], "bank ready_at")? })
                }
                _ => Err(bad()),
            }
        }
        _ => Err(bad()),
    }
}

fn bank_to_json(s: &BankSnapshot) -> Json {
    obj(vec![
        ("state", bank_fsm_to_json(&s.state)),
        (
            "last_activate",
            match s.last_activate {
                Some(c) => hex64(c),
                None => Json::Null,
            },
        ),
        ("row_hits", hex64(s.row_hits)),
        ("row_misses", hex64(s.row_misses)),
        ("row_conflicts", hex64(s.row_conflicts)),
        ("busy_cycles", hex64(s.busy_cycles)),
    ])
}

fn bank_from_json(j: &Json) -> Result<BankSnapshot, SimError> {
    let last_activate = match field(j, "last_activate")? {
        Json::Null => None,
        other => Some(parse_hex64(other, "last_activate")?),
    };
    Ok(BankSnapshot {
        state: bank_fsm_from_json(field(j, "state")?)?,
        last_activate,
        row_hits: get_u64(j, "row_hits")?,
        row_misses: get_u64(j, "row_misses")?,
        row_conflicts: get_u64(j, "row_conflicts")?,
        busy_cycles: get_u64(j, "busy_cycles")?,
    })
}

fn gddr_to_json(s: &GddrState) -> Json {
    obj(vec![
        ("banks", Json::Arr(s.banks.iter().map(bank_to_json).collect())),
        ("busy_until", hex64(s.busy_until)),
        (
            "last_dir",
            match s.last_dir {
                Some(Direction::Read) => Json::Str("R".into()),
                Some(Direction::Write) => Json::Str("W".into()),
                None => Json::Null,
            },
        ),
        ("total_transactions", hex64(s.total_transactions)),
        ("total_busy_cycles", hex64(s.total_busy_cycles)),
        ("turnarounds", hex64(s.turnarounds)),
    ])
}

fn gddr_from_json(j: &Json) -> Result<GddrState, SimError> {
    let banks = get_arr(j, "banks")?
        .iter()
        .map(bank_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let last_dir = match field(j, "last_dir")? {
        Json::Null => None,
        Json::Str(s) if s == "R" => Some(Direction::Read),
        Json::Str(s) if s == "W" => Some(Direction::Write),
        other => return Err(mismatch(format!("bad last_dir: {}", other.render()))),
    };
    Ok(GddrState {
        banks,
        busy_until: get_u64(j, "busy_until")?,
        last_dir,
        total_transactions: get_u64(j, "total_transactions")?,
        total_busy_cycles: get_u64(j, "total_busy_cycles")?,
        turnarounds: get_u64(j, "turnarounds")?,
    })
}

fn mem_ctrl_to_json(s: &MemControllerState) -> Json {
    obj(vec![
        ("channels", Json::Arr(s.channels.iter().map(gddr_to_json).collect())),
        ("next_clients", Json::Arr(s.next_clients.iter().map(|&n| num(n as f64)).collect())),
        ("queue_slots", Json::Arr(s.queue_slots.iter().map(|&n| num(n as f64)).collect())),
        ("system_bus_free_at", hex64(s.system_bus_free_at)),
        ("bytes_read", hex64(s.bytes_read)),
        ("bytes_written", hex64(s.bytes_written)),
        (
            "per_client_bytes",
            Json::Arr(
                s.per_client_bytes
                    .iter()
                    .map(|(c, b)| Json::Arr(vec![num(c.code()), hex64(*b)]))
                    .collect(),
            ),
        ),
    ])
}

fn mem_ctrl_from_json(j: &Json) -> Result<MemControllerState, SimError> {
    let channels = get_arr(j, "channels")?
        .iter()
        .map(gddr_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let mut next_clients = Vec::new();
    for n in get_arr(j, "next_clients")? {
        let v = n
            .as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| mismatch("bad next_clients entry"))?;
        next_clients.push(v as usize);
    }
    let mut queue_slots = Vec::new();
    for n in get_arr(j, "queue_slots")? {
        let v = n
            .as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| mismatch("bad queue_slots entry"))?;
        queue_slots.push(v as usize);
    }
    let mut per_client_bytes = Vec::new();
    for e in get_arr(j, "per_client_bytes")? {
        let Json::Arr(pair) = e else {
            return Err(mismatch("per_client_bytes entry is not a pair"));
        };
        if pair.len() != 2 {
            return Err(mismatch("per_client_bytes entry is not a pair"));
        }
        let code = pair[0]
            .as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| mismatch("bad client code"))? as u32;
        let client = Client::from_code(code)
            .ok_or_else(|| mismatch(format!("unknown client code {code}")))?;
        per_client_bytes.push((client, parse_hex64(&pair[1], "per_client_bytes")?));
    }
    Ok(MemControllerState {
        channels,
        next_clients,
        queue_slots,
        system_bus_free_at: get_u64(j, "system_bus_free_at")?,
        bytes_read: get_u64(j, "bytes_read")?,
        bytes_written: get_u64(j, "bytes_written")?,
        per_client_bytes,
    })
}

fn stats_to_json(s: &StatsSnapshot) -> Json {
    let entries = s
        .entries
        .iter()
        .map(|e| {
            obj(vec![
                ("name", Json::Str(e.name.clone())),
                ("counter", Json::Bool(e.is_counter)),
                ("total", hex64(e.total)),
                ("gauge", num(e.gauge)),
                ("windows", Json::Arr(e.windows.iter().map(|&w| num(w)).collect())),
                ("last_total", hex64(e.last_total)),
            ])
        })
        .collect();
    obj(vec![
        ("entries", Json::Arr(entries)),
        ("windows_closed", num(s.windows_closed as f64)),
    ])
}

fn stats_from_json(j: &Json) -> Result<StatsSnapshot, SimError> {
    let mut entries = Vec::new();
    for e in get_arr(j, "entries")? {
        let mut windows = Vec::new();
        for w in get_arr(e, "windows")? {
            windows.push(w.as_f64().ok_or_else(|| mismatch("bad stats window"))?);
        }
        entries.push(StatSnapshotEntry {
            name: get_str(e, "name")?.to_string(),
            is_counter: get_bool(e, "counter")?,
            total: get_u64(e, "total")?,
            gauge: get_f64(e, "gauge")?,
            windows,
            last_total: get_u64(e, "last_total")?,
        });
    }
    Ok(StatsSnapshot { entries, windows_closed: get_usize(j, "windows_closed")? })
}

fn fault_to_json(s: &FaultInjectorState) -> Json {
    let hooks = s
        .hooks
        .iter()
        .map(|h| {
            obj(vec![
                ("signal", Json::Str(h.signal.clone())),
                ("write_index", hex64(h.write_index)),
                ("hits", hex64(h.hits)),
            ])
        })
        .collect();
    let mem = match &s.mem {
        Some(m) => obj(vec![
            ("replies_seen", hex64(m.replies_seen)),
            ("stall_cycles_served", hex64(m.stall_cycles_served)),
            ("bits_flipped", hex64(m.bits_flipped)),
        ]),
        None => Json::Null,
    };
    obj(vec![
        ("rng_state", hex64(s.rng_state)),
        ("hooks", Json::Arr(hooks)),
        ("mem", mem),
    ])
}

fn fault_from_json(j: &Json) -> Result<FaultInjectorState, SimError> {
    let mut hooks = Vec::new();
    for h in get_arr(j, "hooks")? {
        hooks.push(SignalFaultsState {
            signal: get_str(h, "signal")?.to_string(),
            write_index: get_u64(h, "write_index")?,
            hits: get_u64(h, "hits")?,
        });
    }
    let mem = match field(j, "mem")? {
        Json::Null => None,
        m => Some(MemFaultsState {
            replies_seen: get_u64(m, "replies_seen")?,
            stall_cycles_served: get_u64(m, "stall_cycles_served")?,
            bits_flipped: get_u64(m, "bits_flipped")?,
        }),
    };
    Ok(FaultInjectorState { rng_state: get_u64(j, "rng_state")?, hooks, mem })
}

fn frame_to_json(f: &FrameDump) -> Json {
    obj(vec![
        ("width", num(f.width)),
        ("height", num(f.height)),
        ("rgba", rle_encode(&f.rgba)),
    ])
}

fn frame_from_json(j: &Json) -> Result<FrameDump, SimError> {
    let width = get_u32(j, "width")?;
    let height = get_u32(j, "height")?;
    let rgba = rle_decode(field(j, "rgba")?, (width as usize) * (height as usize) * 4, "frame")?;
    Ok(FrameDump { width, height, rgba })
}

fn cp_to_json(s: &CommandProcessorState) -> Json {
    obj(vec![
        ("next_upload_id", hex64(s.next_upload_id)),
        ("next_batch_id", hex64(s.next_batch_id)),
        (
            "last_draw_early",
            match s.last_draw_early {
                Some(b) => Json::Bool(b),
                None => Json::Null,
            },
        ),
    ])
}

fn cp_from_json(j: &Json) -> Result<CommandProcessorState, SimError> {
    let last_draw_early = match field(j, "last_draw_early")? {
        Json::Null => None,
        Json::Bool(b) => Some(*b),
        other => return Err(mismatch(format!("bad last_draw_early: {}", other.render()))),
    };
    Ok(CommandProcessorState {
        next_upload_id: get_u64(j, "next_upload_id")?,
        next_batch_id: get_u64(j, "next_batch_id")?,
        last_draw_early,
    })
}

fn streamer_to_json(s: &StreamerState) -> Json {
    obj(vec![
        ("index_chunks", Json::Arr(s.index_chunks.iter().map(|&c| hex64(c)).collect())),
        ("next_req_id", hex64(s.next_req_id)),
        ("ids_issued", hex64(s.ids_issued)),
    ])
}

fn streamer_from_json(j: &Json) -> Result<StreamerState, SimError> {
    let index_chunks = get_arr(j, "index_chunks")?
        .iter()
        .map(|c| parse_hex64(c, "index_chunks"))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StreamerState {
        index_chunks,
        next_req_id: get_u64(j, "next_req_id")?,
        ids_issued: get_u64(j, "ids_issued")?,
    })
}

fn hz_to_json(s: &HzState) -> Json {
    obj(vec![
        ("entry_bits", Json::Arr(s.entry_bits.iter().map(|&b| num(b)).collect())),
        ("target_width", num(s.target_width)),
        (
            "bound_z",
            match s.bound_z {
                Some((base, w, h)) => Json::Arr(vec![hex64(base), num(w), num(h)]),
                None => Json::Null,
            },
        ),
        ("ids_issued", hex64(s.ids_issued)),
    ])
}

fn hz_from_json(j: &Json) -> Result<HzState, SimError> {
    let mut entry_bits = Vec::new();
    for b in get_arr(j, "entry_bits")? {
        let v = b
            .as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64)
            .ok_or_else(|| mismatch("bad HZ entry bits"))?;
        entry_bits.push(v as u32);
    }
    let bound_z = match field(j, "bound_z")? {
        Json::Null => None,
        Json::Arr(t) if t.len() == 3 => {
            let base = parse_hex64(&t[0], "bound_z")?;
            let w = t[1]
                .as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .ok_or_else(|| mismatch("bad bound_z width"))? as u32;
            let h = t[2]
                .as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .ok_or_else(|| mismatch("bad bound_z height"))? as u32;
            Some((base, w, h))
        }
        other => return Err(mismatch(format!("bad bound_z: {}", other.render()))),
    };
    Ok(HzState {
        entry_bits,
        target_width: get_u32(j, "target_width")?,
        bound_z,
        ids_issued: get_u64(j, "ids_issued")?,
    })
}

fn ffifo_to_json(s: &FragmentFifoState) -> Json {
    obj(vec![
        ("next_order", hex64(s.next_order)),
        ("next_tex_id", hex64(s.next_tex_id)),
        ("next_tu", num(s.next_tu as f64)),
        ("ids_issued", hex64(s.ids_issued)),
    ])
}

fn ffifo_from_json(j: &Json) -> Result<FragmentFifoState, SimError> {
    Ok(FragmentFifoState {
        next_order: get_u64(j, "next_order")?,
        next_tex_id: get_u64(j, "next_tex_id")?,
        next_tu: get_usize(j, "next_tu")?,
        ids_issued: get_u64(j, "ids_issued")?,
    })
}

fn texunit_to_json(s: &TextureUnitState) -> Json {
    obj(vec![
        ("cache", cache_to_json(&s.cache)),
        ("next_req_id", hex64(s.next_req_id)),
    ])
}

fn texunit_from_json(j: &Json) -> Result<TextureUnitState, SimError> {
    Ok(TextureUnitState {
        cache: cache_from_json(field(j, "cache")?)?,
        next_req_id: get_u64(j, "next_req_id")?,
    })
}

fn zstencil_to_json(s: &ZStencilState) -> Json {
    obj(vec![
        (
            "cache",
            match &s.cache {
                Some(c) => rop_cache_to_json(c),
                None => Json::Null,
            },
        ),
        ("target_width", num(s.target_width)),
        ("prefer_late", Json::Bool(s.prefer_late)),
        ("next_req_id", hex64(s.next_req_id)),
    ])
}

fn zstencil_from_json(j: &Json) -> Result<ZStencilState, SimError> {
    let cache = match field(j, "cache")? {
        Json::Null => None,
        c => Some(rop_cache_from_json(c)?),
    };
    Ok(ZStencilState {
        cache,
        target_width: get_u32(j, "target_width")?,
        prefer_late: get_bool(j, "prefer_late")?,
        next_req_id: get_u64(j, "next_req_id")?,
    })
}

fn colorwrite_to_json(s: &ColorWriteState) -> Json {
    obj(vec![
        (
            "cache",
            match &s.cache {
                Some(c) => rop_cache_to_json(c),
                None => Json::Null,
            },
        ),
        ("prefer_late", Json::Bool(s.prefer_late)),
        ("next_req_id", hex64(s.next_req_id)),
    ])
}

fn colorwrite_from_json(j: &Json) -> Result<ColorWriteState, SimError> {
    let cache = match field(j, "cache")? {
        Json::Null => None,
        c => Some(rop_cache_from_json(c)?),
    };
    Ok(ColorWriteState {
        cache,
        prefer_late: get_bool(j, "prefer_late")?,
        next_req_id: get_u64(j, "next_req_id")?,
    })
}

// ---------------------------------------------------------------------
// The checkpoint body and container
// ---------------------------------------------------------------------

/// Health counters of one signal, restored so a resumed run's failure
/// reports and signal statistics match a never-stopped run's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalCounterState {
    /// The signal's registered name.
    pub name: String,
    /// Objects written so far.
    pub written: u64,
    /// Objects read so far.
    pub read: u64,
    /// Objects lost so far (lossy/isolated wires).
    pub lost: u64,
}

/// The machine state carried by a checkpoint: everything persistent, and
/// nothing else (the quiescence condition guarantees transient state is
/// empty when a snapshot is taken).
#[derive(Debug, Clone)]
pub struct CheckpointBody {
    /// Global cycle counter at the snapshot.
    pub cycle: u64,
    /// Frames completed (swaps) so far.
    pub frames: u64,
    /// Cycles the idle-skip scheduler jumped so far.
    pub cycles_skipped: u64,
    /// Steps left on the horizon poll's `Busy`-verdict cache. Restoring
    /// it keeps a resumed run's skip decisions — and so its
    /// `cycles_skipped` counter — bit-identical to an uninterrupted run.
    pub horizon_backoff: u64,
    /// Commands the Command Processor has fully consumed; restore
    /// re-enqueues the rest of the trace from this index.
    pub commands_consumed: u64,
    /// The full GPU memory image.
    pub memory: Vec<u8>,
    /// Framebuffer dumps accumulated so far (when
    /// [`keep_frames`](crate::gpu::Gpu::keep_frames) is on).
    pub framebuffers: Vec<FrameDump>,
    /// Memory-controller and DRAM-channel state.
    pub mem_ctrl: MemControllerState,
    /// Command Processor registers.
    pub cp: CommandProcessorState,
    /// Streamer state.
    pub streamer: StreamerState,
    /// Primitive Assembly object-id cursor.
    pub pa_ids: u64,
    /// Triangle Setup object-id cursor.
    pub setup_ids: u64,
    /// Fragment Generator object-id cursor.
    pub fraggen_ids: u64,
    /// Hierarchical Z buffer and registers.
    pub hz: HzState,
    /// Interpolator round-robin cursor.
    pub interpolator_next_input: usize,
    /// Fragment FIFO cursors.
    pub ffifo: FragmentFifoState,
    /// Per-texture-unit state, in unit order.
    pub texunits: Vec<TextureUnitState>,
    /// Per-ROPz-unit state, in unit order.
    pub zstencil: Vec<ZStencilState>,
    /// Per-ROPc-unit state, in unit order.
    pub colorwrite: Vec<ColorWriteState>,
    /// DAC read-request id cursor.
    pub dac_next_id: u64,
    /// Every statistic's counters and windows.
    pub stats: StatsSnapshot,
    /// Per-signal health counters, in name order.
    pub signals: Vec<SignalCounterState>,
    /// Fault-injector progress, when the run is chaos-tested.
    pub fault: Option<FaultInjectorState>,
}

impl CheckpointBody {
    fn to_json(&self) -> Json {
        obj(vec![
            ("cycle", hex64(self.cycle)),
            ("frames", hex64(self.frames)),
            ("cycles_skipped", hex64(self.cycles_skipped)),
            ("horizon_backoff", hex64(self.horizon_backoff)),
            ("commands_consumed", hex64(self.commands_consumed)),
            ("memory_len", num(self.memory.len() as f64)),
            ("memory", rle_encode(&self.memory)),
            ("framebuffers", Json::Arr(self.framebuffers.iter().map(frame_to_json).collect())),
            ("mem_ctrl", mem_ctrl_to_json(&self.mem_ctrl)),
            ("cp", cp_to_json(&self.cp)),
            ("streamer", streamer_to_json(&self.streamer)),
            ("pa_ids", hex64(self.pa_ids)),
            ("setup_ids", hex64(self.setup_ids)),
            ("fraggen_ids", hex64(self.fraggen_ids)),
            ("hz", hz_to_json(&self.hz)),
            ("interpolator_next_input", num(self.interpolator_next_input as f64)),
            ("ffifo", ffifo_to_json(&self.ffifo)),
            ("texunits", Json::Arr(self.texunits.iter().map(texunit_to_json).collect())),
            ("zstencil", Json::Arr(self.zstencil.iter().map(zstencil_to_json).collect())),
            ("colorwrite", Json::Arr(self.colorwrite.iter().map(colorwrite_to_json).collect())),
            ("dac_next_id", hex64(self.dac_next_id)),
            ("stats", stats_to_json(&self.stats)),
            (
                "signals",
                Json::Arr(
                    self.signals
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("name", Json::Str(s.name.clone())),
                                ("written", hex64(s.written)),
                                ("read", hex64(s.read)),
                                ("lost", hex64(s.lost)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fault",
                match &self.fault {
                    Some(f) => fault_to_json(f),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, SimError> {
        let memory_len = get_usize(j, "memory_len")?;
        let memory = rle_decode(field(j, "memory")?, memory_len, "memory image")?;
        let framebuffers = get_arr(j, "framebuffers")?
            .iter()
            .map(frame_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let texunits = get_arr(j, "texunits")?
            .iter()
            .map(texunit_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let zstencil = get_arr(j, "zstencil")?
            .iter()
            .map(zstencil_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let colorwrite = get_arr(j, "colorwrite")?
            .iter()
            .map(colorwrite_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mut signals = Vec::new();
        for s in get_arr(j, "signals")? {
            signals.push(SignalCounterState {
                name: get_str(s, "name")?.to_string(),
                written: get_u64(s, "written")?,
                read: get_u64(s, "read")?,
                lost: get_u64(s, "lost")?,
            });
        }
        let fault = match field(j, "fault")? {
            Json::Null => None,
            f => Some(fault_from_json(f)?),
        };
        Ok(CheckpointBody {
            cycle: get_u64(j, "cycle")?,
            frames: get_u64(j, "frames")?,
            cycles_skipped: get_u64(j, "cycles_skipped")?,
            horizon_backoff: get_u64(j, "horizon_backoff")?,
            commands_consumed: get_u64(j, "commands_consumed")?,
            memory,
            framebuffers,
            mem_ctrl: mem_ctrl_from_json(field(j, "mem_ctrl")?)?,
            cp: cp_from_json(field(j, "cp")?)?,
            streamer: streamer_from_json(field(j, "streamer")?)?,
            pa_ids: get_u64(j, "pa_ids")?,
            setup_ids: get_u64(j, "setup_ids")?,
            fraggen_ids: get_u64(j, "fraggen_ids")?,
            hz: hz_from_json(field(j, "hz")?)?,
            interpolator_next_input: get_usize(j, "interpolator_next_input")?,
            ffifo: ffifo_from_json(field(j, "ffifo")?)?,
            texunits,
            zstencil,
            colorwrite,
            dac_next_id: get_u64(j, "dac_next_id")?,
            stats: stats_from_json(field(j, "stats")?)?,
            signals,
            fault,
        })
    }
}

/// A versioned, checksummed, hash-guarded checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// FNV-1a-64 of the config's JSON rendering (see [`config_hash`]).
    pub config_hash: u64,
    /// FNV-1a-64 of the trace's canonical encoding (see [`trace_hash`]).
    pub trace_hash: u64,
    /// The machine state.
    pub body: CheckpointBody,
}

impl Checkpoint {
    /// Renders the checkpoint as its on-disk JSON document, computing the
    /// body CRC.
    pub fn to_json(&self) -> Json {
        let body = self.body.to_json();
        let crc = crc32(body.render().as_bytes());
        obj(vec![
            ("magic", Json::Str(MAGIC.into())),
            ("version", num(FORMAT_VERSION as f64)),
            ("config_hash", hex64(self.config_hash)),
            ("trace_hash", hex64(self.trace_hash)),
            ("body_crc", num(crc)),
            ("body", body),
        ])
    }

    /// Parses and validates a checkpoint document: magic, format version
    /// and body CRC are all checked before the body is decoded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] on any violation, except
    /// an unsupported format version which yields the typed
    /// [`SimError::CheckpointVersion`].
    pub fn from_json(j: &Json) -> Result<Self, SimError> {
        let magic = get_str(j, "magic")?;
        if magic != MAGIC {
            return Err(mismatch(format!("bad magic `{magic}`, expected `{MAGIC}`")));
        }
        let version = get_small(j, "version")?;
        if version != FORMAT_VERSION {
            return Err(SimError::CheckpointVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let body_json = field(j, "body")?;
        let crc = crc32(body_json.render().as_bytes());
        let stored = get_small(j, "body_crc")? as u32;
        if crc != stored {
            return Err(mismatch(format!(
                "body CRC mismatch: stored {stored:#010x}, computed {crc:#010x} (truncated or corrupted file)"
            )));
        }
        Ok(Checkpoint {
            config_hash: get_u64(j, "config_hash")?,
            trace_hash: get_u64(j, "trace_hash")?,
            body: CheckpointBody::from_json(body_json)?,
        })
    }

    /// Writes the checkpoint atomically: the document lands in a `.tmp`
    /// sibling, is flushed, then renamed over `path` — a process killed
    /// mid-write always leaves the previous valid checkpoint in place.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] describing the I/O
    /// failure.
    pub fn write_file(&self, path: &Path) -> Result<(), SimError> {
        use std::io::Write;
        let text = self.to_json().pretty();
        let tmp = path.with_extension("ckpt.tmp");
        let io = |e: std::io::Error| mismatch(format!("checkpoint write failed: {e}"));
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(text.as_bytes()).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(io)?;
        Ok(())
    }

    /// Reads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the file is missing,
    /// unparseable, truncated, corrupted or of the wrong version.
    pub fn read_file(path: &Path) -> Result<Self, SimError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| mismatch(format!("cannot read checkpoint {}: {e}", path.display())))?;
        let json = attila_json::parse(&text)
            .map_err(|e| mismatch(format!("checkpoint is not valid JSON: {e}")))?;
        Self::from_json(&json)
    }

    /// Checks the checkpoint against the config and trace of the run
    /// being resumed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] naming the differing
    /// hash.
    pub fn validate_against(
        &self,
        config: &GpuConfig,
        commands: &[GpuCommand],
    ) -> Result<(), SimError> {
        let ch = config_hash(config);
        if ch != self.config_hash {
            return Err(mismatch(format!(
                "config hash mismatch: checkpoint {:016x}, run {ch:016x}",
                self.config_hash
            )));
        }
        let th = trace_hash(commands);
        if th != self.trace_hash {
            return Err(mismatch(format!(
                "trace hash mismatch: checkpoint {:016x}, run {th:016x}",
                self.trace_hash
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        let mut h = Fnv::new();
        h.write_bytes(b"attila");
        let a = h.finish();
        let mut h = Fnv::new();
        h.write_bytes(b"attila");
        assert_eq!(a, h.finish());
        let mut h = Fnv::new();
        h.write_bytes(b"attilb");
        assert_ne!(a, h.finish());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn rle_round_trips() {
        let data = [0u8, 0, 0, 7, 7, 1, 0, 0, 0, 0, 255];
        let enc = rle_encode(&data);
        assert_eq!(rle_decode(&enc, data.len(), "t").unwrap(), data);
        assert!(rle_decode(&enc, data.len() + 1, "t").is_err());
        assert!(rle_decode(&enc, data.len() - 1, "t").is_err());
    }

    #[test]
    fn hex_round_trips_extremes() {
        for v in [0u64, 1, u64::MAX, 1 << 53, (1 << 53) + 1] {
            assert_eq!(parse_hex64(&hex64(v), "t").unwrap(), v);
        }
    }

    #[test]
    fn trace_hash_sees_payload_bytes() {
        use std::sync::Arc;
        let a = vec![GpuCommand::WriteBuffer { address: 0, data: Arc::new(vec![1, 2, 3]) }];
        let b = vec![GpuCommand::WriteBuffer { address: 0, data: Arc::new(vec![1, 2, 4]) }];
        assert_ne!(trace_hash(&a), trace_hash(&b));
        assert_eq!(trace_hash(&a), trace_hash(&a.clone()));
    }

    #[test]
    fn config_hash_distinguishes_presets() {
        assert_ne!(config_hash(&GpuConfig::baseline()), config_hash(&GpuConfig::embedded()));
        assert_eq!(config_hash(&GpuConfig::baseline()), config_hash(&GpuConfig::baseline()));
    }
}
