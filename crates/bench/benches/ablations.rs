//! Ablations for the design choices DESIGN.md calls out:
//! Hierarchical Z on/off, Z compression on/off, recursive vs tile-scan
//! traversal, unified vs non-unified shading.

use attila_bench::{bench_case, run_workload};
use attila_core::config::{GpuConfig, Traversal};
use attila_gl::workloads::{self, WorkloadParams};

fn params() -> WorkloadParams {
    WorkloadParams { width: 96, height: 96, frames: 1, texture_size: 64, ..Default::default() }
}

fn main() {
    {
        let trace = workloads::doom3_like(params());
        bench_case("hz/on", 10, 1, || {
            let _ = run_workload(GpuConfig::baseline(), &trace).cycles;
        });
        bench_case("hz/off", 10, 1, || {
            let mut cfg = GpuConfig::baseline();
            cfg.hz.enabled = false;
            let _ = run_workload(cfg, &trace).cycles;
        });
    }

    {
        let trace = workloads::doom3_like(params());
        bench_case("z_compression/on", 10, 1, || {
            let _ = run_workload(GpuConfig::baseline(), &trace).cycles;
        });
        bench_case("z_compression/off", 10, 1, || {
            let mut cfg = GpuConfig::baseline();
            cfg.zstencil.compression = false;
            let _ = run_workload(cfg, &trace).cycles;
        });
    }

    {
        let trace = workloads::ut2004_like(params());
        bench_case("traversal/recursive", 10, 1, || {
            let _ = run_workload(GpuConfig::baseline(), &trace).cycles;
        });
        bench_case("traversal/tile_scan", 10, 1, || {
            let mut cfg = GpuConfig::baseline();
            cfg.fraggen.traversal = Traversal::TileScan;
            let _ = run_workload(cfg, &trace).cycles;
        });
    }

    {
        let trace = workloads::ut2004_like(params());
        bench_case("shader_model/unified", 10, 1, || {
            let _ = run_workload(GpuConfig::baseline(), &trace).cycles;
        });
        bench_case("shader_model/non_unified", 10, 1, || {
            let _ = run_workload(GpuConfig::non_unified_baseline(), &trace).cycles;
        });
    }
}
