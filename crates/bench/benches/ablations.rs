//! Criterion ablations for the design choices DESIGN.md calls out:
//! Hierarchical Z on/off, Z compression on/off, recursive vs tile-scan
//! traversal, unified vs non-unified shading.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use attila_bench::run_workload;
use attila_core::config::{GpuConfig, Traversal};
use attila_gl::workloads::{self, WorkloadParams};

fn params() -> WorkloadParams {
    WorkloadParams { width: 96, height: 96, frames: 1, texture_size: 64, ..Default::default() }
}

fn hz_ablation(c: &mut Criterion) {
    let trace = workloads::doom3_like(params());
    let mut group = c.benchmark_group("hz");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("on", |b| {
        b.iter(|| run_workload(GpuConfig::baseline(), &trace).cycles)
    });
    group.bench_function("off", |b| {
        let mut cfg = GpuConfig::baseline();
        cfg.hz.enabled = false;
        b.iter(|| run_workload(cfg.clone(), &trace).cycles)
    });
    group.finish();
}

fn compression_ablation(c: &mut Criterion) {
    let trace = workloads::doom3_like(params());
    let mut group = c.benchmark_group("z_compression");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("on", |b| {
        b.iter(|| run_workload(GpuConfig::baseline(), &trace).cycles)
    });
    group.bench_function("off", |b| {
        let mut cfg = GpuConfig::baseline();
        cfg.zstencil.compression = false;
        b.iter(|| run_workload(cfg.clone(), &trace).cycles)
    });
    group.finish();
}

fn traversal_ablation(c: &mut Criterion) {
    let trace = workloads::ut2004_like(params());
    let mut group = c.benchmark_group("traversal");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("recursive", |b| {
        b.iter(|| run_workload(GpuConfig::baseline(), &trace).cycles)
    });
    group.bench_function("tile_scan", |b| {
        let mut cfg = GpuConfig::baseline();
        cfg.fraggen.traversal = Traversal::TileScan;
        b.iter(|| run_workload(cfg.clone(), &trace).cycles)
    });
    group.finish();
}

fn unified_ablation(c: &mut Criterion) {
    let trace = workloads::ut2004_like(params());
    let mut group = c.benchmark_group("shader_model");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("unified", |b| {
        b.iter(|| run_workload(GpuConfig::baseline(), &trace).cycles)
    });
    group.bench_function("non_unified", |b| {
        b.iter(|| run_workload(GpuConfig::non_unified_baseline(), &trace).cycles)
    });
    group.finish();
}

criterion_group!(benches, hz_ablation, compression_ablation, traversal_ablation, unified_ablation);
criterion_main!(benches);
