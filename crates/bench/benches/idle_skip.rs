//! The event-horizon scheduler benchmark: cycles per wall-second with idle
//! skipping on vs off, on workloads with and without long idle phases.
//!
//! Before timing anything, every workload is checked for *equivalence*:
//! final cycle counts and framebuffer hashes must be bit-identical between
//! the two modes — a speedup that changes results is a bug, not a win.
//! The texture-streaming workload (fresh textures pushed over the system
//! bus every frame while the pipeline drains) is where skipping clears the
//! ≥1.3× wall-clock bar; pipelined workloads are included to show the
//! scheduler costs (almost) nothing when there is no idleness to harvest.
//!
//! Only [`Gpu::run_trace`] is inside the timed region: trace compilation
//! and machine construction are identical in both modes and would only
//! dilute the measured ratio.

use std::time::Instant;

use attila_bench::{is_full_run, run_skip_pass};
use attila_core::commands::GpuCommand;
use attila_core::config::GpuConfig;
use attila_core::gpu::Gpu;
use attila_gl::workloads::{self, WorkloadParams};
use attila_gl::{compile, GlTrace};

fn params(full: bool) -> WorkloadParams {
    if full {
        WorkloadParams { width: 160, height: 120, frames: 2, texture_size: 256, ..Default::default() }
    } else {
        WorkloadParams { width: 96, height: 96, frames: 1, texture_size: 128, ..Default::default() }
    }
}

/// Times one mode: best-of-`samples` wall seconds for `run_trace` alone
/// (one extra untimed pass warms up first).
fn time_mode(config: &GpuConfig, commands: &[GpuCommand], skip: bool, samples: u32) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..=samples {
        let mut gpu = Gpu::new(config.clone());
        gpu.max_cycles = 2_000_000_000;
        gpu.keep_frames = false;
        gpu.skip_idle = skip;
        let start = Instant::now();
        gpu.run_trace(commands).expect("simulation drains");
        if i > 0 {
            best = best.min(start.elapsed().as_secs_f64());
        }
    }
    best
}

fn bench_workload(name: &str, trace: &GlTrace, samples: u32) {
    let mut config = GpuConfig::baseline();
    config.display.width = trace.width;
    config.display.height = trace.height;

    // Equivalence gate first: identical cycles, identical framebuffers.
    let (cycles_on, skipped, hash_on) = run_skip_pass(config.clone(), trace, true);
    let (cycles_off, off_skipped, hash_off) = run_skip_pass(config.clone(), trace, false);
    assert_eq!(cycles_on, cycles_off, "{name}: cycle counts diverge between modes");
    assert_eq!(hash_on, hash_off, "{name}: framebuffer hashes diverge between modes");
    assert_eq!(off_skipped, 0, "{name}: skip-off must never jump the clock");

    let commands = compile(trace.width, trace.height, &trace.calls).expect("trace compiles");
    let t_on = time_mode(&config, &commands, true, samples);
    let t_off = time_mode(&config, &commands, false, samples);
    let speedup = t_off / t_on;
    println!(
        "{name:<28} {cycles_on:>10} cycles  skipped {skipped:>9} ({:>5.1}%)  \
         off {:>8.1} Mcyc/s  on {:>8.1} Mcyc/s  speedup {speedup:>5.2}x",
        100.0 * skipped as f64 / cycles_on as f64,
        cycles_on as f64 / t_off / 1e6,
        cycles_on as f64 / t_on / 1e6,
    );
}

fn main() {
    let full = is_full_run();
    let samples = if full { 5 } else { 3 };
    let p = params(full);

    // Upload-dominated: every frame streams a fresh texture over the
    // system bus, so the pipeline repeatedly drains — long idle windows.
    let stream = workloads::texture_stream(WorkloadParams {
        frames: if full { 4 } else { 3 },
        texture_size: if full { 256 } else { 128 },
        ..p
    });
    bench_workload("texture-stream (idle-heavy)", &stream, samples);

    // Upload then one draw: a single idle window at the start.
    let quickstart = workloads::quickstart_trace(p.width, p.height);
    bench_workload("quickstart (upload once)", &quickstart, samples);

    // Mixed: geometry + shading keep most boxes busy most of the time.
    let doom3 = workloads::doom3_like(p);
    bench_workload("doom3-like (mixed)", &doom3, samples);

    // Fill-bound: back-to-back full-screen layers, almost no idle cycles.
    let fill = workloads::fillrate(p.width, p.height, 4, true);
    bench_workload("fillrate (busy)", &fill, samples);
}
