//! Bench backing Figure 7 (micro version): the case-study
//! configuration at 3 vs 1 texture units, thread-window vs in-order
//! queue, on a single small Doom3-like frame.

use attila_bench::{bench_case, case_study_config, run_workload};
use attila_core::config::ShaderScheduling;
use attila_gl::workloads::{self, WorkloadParams};

fn main() {
    let params = WorkloadParams {
        width: 96,
        height: 96,
        frames: 1,
        texture_size: 64,
        ..Default::default()
    };
    let trace = workloads::doom3_like(params);
    for sched in [ShaderScheduling::ThreadWindow, ShaderScheduling::InOrderQueue] {
        for tus in [3usize, 1] {
            bench_case(&format!("case_study/{sched:?}/{tus}tus"), 10, 1, || {
                let _ = run_workload(case_study_config(tus, sched, 0), &trace).cycles;
            });
        }
    }
}
