//! Criterion bench backing Figure 7 (micro version): the case-study
//! configuration at 3 vs 1 texture units, thread-window vs in-order
//! queue, on a single small Doom3-like frame.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use attila_bench::{case_study_config, run_workload};
use attila_core::config::ShaderScheduling;
use attila_gl::workloads::{self, WorkloadParams};

fn texture_ratio(c: &mut Criterion) {
    let params = WorkloadParams {
        width: 96,
        height: 96,
        frames: 1,
        texture_size: 64,
        ..Default::default()
    };
    let trace = workloads::doom3_like(params);
    let mut group = c.benchmark_group("case_study");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    for sched in [ShaderScheduling::ThreadWindow, ShaderScheduling::InOrderQueue] {
        for tus in [3usize, 1] {
            group.bench_with_input(
                BenchmarkId::new(format!("{sched:?}"), tus),
                &tus,
                |b, &tus| {
                    b.iter(|| run_workload(case_study_config(tus, sched, 0), &trace).cycles)
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, texture_ratio);
criterion_main!(benches);
