//! Criterion bench backing Table 1: whole-pipeline throughput on
//! fill-rate microworkloads (fragment-bound) and a geometry-heavy strip
//! (vertex-bound).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use attila_bench::run_workload;
use attila_core::config::GpuConfig;
use attila_gl::workloads;

fn fillrate_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fillrate");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    for layers in [1u32, 4] {
        let trace = workloads::fillrate(96, 96, layers, false);
        group.throughput(Throughput::Elements((96 * 96 * layers) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(layers), &trace, |b, trace| {
            b.iter(|| run_workload(GpuConfig::baseline(), trace).cycles)
        });
    }
    group.finish();
}

fn textured_fillrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("textured_fillrate");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));
    let trace = workloads::fillrate(96, 96, 4, true);
    group.throughput(Throughput::Elements(96 * 96 * 4));
    group.bench_function("4layers", |b| {
        b.iter(|| run_workload(GpuConfig::baseline(), &trace).cycles)
    });
    group.finish();
}

criterion_group!(benches, fillrate_throughput, textured_fillrate);
criterion_main!(benches);
