//! Bench backing Table 1: whole-pipeline throughput on fill-rate
//! microworkloads (fragment-bound) and a geometry-heavy strip
//! (vertex-bound).

use attila_bench::{bench_case, run_workload};
use attila_core::config::GpuConfig;
use attila_gl::workloads;

fn main() {
    println!("== fillrate (96x96) ==");
    for layers in [1u32, 4] {
        let trace = workloads::fillrate(96, 96, layers, false);
        let fragments = u64::from(96 * 96 * layers);
        bench_case(&format!("fillrate/{layers} ({fragments} fragments)"), 10, 1, || {
            let _ = run_workload(GpuConfig::baseline(), &trace).cycles;
        });
    }

    println!("== textured fillrate (96x96) ==");
    let trace = workloads::fillrate(96, 96, 4, true);
    bench_case("textured_fillrate/4layers", 10, 1, || {
        let _ = run_workload(GpuConfig::baseline(), &trace).cycles;
    });
}
