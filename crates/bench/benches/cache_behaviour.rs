//! Criterion bench backing Table 2: the cache/DRAM/compression models in
//! isolation (these run millions of times per simulated frame, so their
//! own cost and behaviour both matter).

use criterion::{criterion_group, criterion_main, Criterion};

use attila_emu::fragops::{compress_z_block, decompress_z_block, ZBLOCK_WORDS};
use attila_mem::cache::{Cache, CacheConfig, Lookup};
use attila_mem::gddr::{Direction, GddrChannel, GddrTiming};

fn cache_hit_path(c: &mut Criterion) {
    c.bench_function("cache_hit_lookup", |b| {
        let mut cache = Cache::new(CacheConfig::attila_baseline(4), "bench");
        cache.allocate(0).unwrap();
        cache.fill_done(0);
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            assert_eq!(cache.lookup(cycle, 0, false), Lookup::Hit);
        })
    });
}

fn cache_streaming_misses(c: &mut Criterion) {
    c.bench_function("cache_streaming_miss", |b| {
        let mut cache = Cache::new(CacheConfig::attila_baseline(4), "bench");
        let mut addr = 0u64;
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            addr += 256;
            if cache.lookup(cycle, addr, false) == Lookup::Miss {
                let _ = cache.allocate(addr);
                cache.fill_done(addr);
            }
        })
    });
}

fn dram_same_page(c: &mut Criterion) {
    c.bench_function("gddr_same_page_issue", |b| {
        let mut ch = GddrChannel::new(GddrTiming::default());
        let mut cycle = 0u64;
        b.iter(|| {
            cycle = ch.issue(cycle, 64, Direction::Read);
        })
    });
}

fn z_compression(c: &mut Criterion) {
    let mut flat = [0x123456u32; ZBLOCK_WORDS];
    for (i, w) in flat.iter_mut().enumerate() {
        *w += i as u32;
    }
    c.bench_function("z_compress_quarter", |b| {
        b.iter(|| compress_z_block(&flat))
    });
    let blk = compress_z_block(&flat);
    c.bench_function("z_decompress_quarter", |b| b.iter(|| decompress_z_block(&blk)));
}

criterion_group!(benches, cache_hit_path, cache_streaming_misses, dram_same_page, z_compression);
criterion_main!(benches);
