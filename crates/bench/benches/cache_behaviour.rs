//! Bench backing Table 2: the cache/DRAM/compression models in
//! isolation (these run millions of times per simulated frame, so their
//! own cost and behaviour both matter).

use attila_bench::bench_case;
use attila_emu::fragops::{compress_z_block, decompress_z_block, ZBLOCK_WORDS};
use attila_mem::cache::{Cache, CacheConfig, Lookup};
use attila_mem::gddr::{Direction, GddrChannel, GddrTiming};

fn main() {
    {
        let mut cache = Cache::new(CacheConfig::attila_baseline(4), "bench");
        cache.allocate(0).unwrap();
        cache.fill_done(0);
        let mut cycle = 0u64;
        bench_case("cache_hit_lookup", 10, 100_000, || {
            cycle += 1;
            assert_eq!(cache.lookup(cycle, 0, false), Lookup::Hit);
        });
    }

    {
        let mut cache = Cache::new(CacheConfig::attila_baseline(4), "bench");
        let mut addr = 0u64;
        let mut cycle = 0u64;
        bench_case("cache_streaming_miss", 10, 100_000, || {
            cycle += 1;
            addr += 256;
            if cache.lookup(cycle, addr, false) == Lookup::Miss {
                let _ = cache.allocate(addr);
                cache.fill_done(addr);
            }
        });
    }

    {
        let mut ch = GddrChannel::new(GddrTiming::default());
        let mut cycle = 0u64;
        bench_case("gddr_same_page_issue", 10, 100_000, || {
            cycle = ch.issue(cycle, 64, Direction::Read).done;
        });
    }

    {
        let mut flat = [0x123456u32; ZBLOCK_WORDS];
        for (i, w) in flat.iter_mut().enumerate() {
            *w += i as u32;
        }
        bench_case("z_compress_quarter", 10, 100_000, || {
            let _ = compress_z_block(&flat);
        });
        let blk = compress_z_block(&flat);
        bench_case("z_decompress_quarter", 10, 100_000, || {
            let _ = decompress_z_block(&blk);
        });
    }
}
