//! # attila-bench — experiment harnesses
//!
//! Regenerates every table and figure of the ATTILA ISPASS 2006 paper's
//! evaluation:
//!
//! | Paper artefact | Harness binary |
//! |---|---|
//! | Table 1 (unit bandwidths / queues / latencies) | `table1` |
//! | Table 2 (cache geometry + behaviour) | `table2` |
//! | Figure 7 (performance vs texture units, two schedulers) | `fig7` |
//! | Figure 8 (texture cache hit rate and bandwidth) | `fig8` |
//! | Figure 9 (unit-utilization time series) | `fig9` |
//! | Figure 10 (rendered-frame validation) | `fig10` |
//!
//! Benches in `benches/` (plain `harness = false` programs timed with
//! [`std::time::Instant`]) cover the same ground as repeatable
//! micro-measurements plus the design-choice ablations (HZ, compression,
//! traversal, unified vs non-unified) and the event-horizon scheduler
//! (`idle_skip`: cycles per wall-second with idle skipping on vs off,
//! gated on bit-identical results between the two modes).
//!
//! Absolute cycle counts differ from the paper's (their substrate was a
//! 2006 testbed, their traces real games at 1024×768); the harnesses
//! report the *shape* — who wins, by what factor, where behaviour
//! saturates — which is what `EXPERIMENTS.md` records.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use attila_core::config::{GpuConfig, ShaderScheduling};
use attila_core::gpu::Gpu;
use attila_gl::workloads::WorkloadParams;
use attila_gl::{compile, GlTrace};

/// Metrics extracted from one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Frames rendered.
    pub frames: u64,
    /// Frames per second at the configured clock.
    pub fps: f64,
    /// Aggregate texture cache hit rate.
    pub tex_hit_rate: f64,
    /// Texture bytes fetched from DRAM.
    pub tex_bytes: u64,
    /// Total DRAM bytes moved.
    pub mem_bytes: u64,
    /// Per-shader-unit busy cycles.
    pub shader_busy: Vec<u64>,
    /// Per-texture-unit busy cycles.
    pub texture_busy: Vec<u64>,
    /// Windowed statistics CSV (the simulator's statistics file).
    pub stats_csv: String,
    /// Per-window samples of the busy-cycle statistics.
    pub windows: Vec<(String, Vec<f64>)>,
}

/// Runs `trace` on `config`.
///
/// # Panics
///
/// Panics if the trace fails to compile or the watchdog expires (a
/// harness bug, not a measurement).
pub fn run_workload(mut config: GpuConfig, trace: &GlTrace) -> RunMetrics {
    config.display.width = trace.width;
    config.display.height = trace.height;
    let commands = compile(trace.width, trace.height, &trace.calls).expect("trace compiles");
    let clock = config.display.clock_mhz;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 2_000_000_000;
    gpu.keep_frames = false;
    let result = gpu.run_trace(&commands).expect("simulation drains");
    let (_, _, tex_hit_rate) = gpu.texture_cache_stats();
    let mut windows = Vec::new();
    for name in gpu.stats().names() {
        if name.contains("busy_cycles") {
            if let Some(series) = gpu.stats().window_series(name) {
                windows.push((name.to_string(), series.to_vec()));
            }
        }
    }
    RunMetrics {
        cycles: result.cycles,
        frames: result.frames,
        fps: result.fps(clock),
        tex_hit_rate,
        tex_bytes: gpu.texture_bytes_read(),
        mem_bytes: gpu.memory().bytes_read() + gpu.memory().bytes_written(),
        shader_busy: gpu.shader_busy_cycles(),
        texture_busy: gpu.texture_busy_cycles(),
        stats_csv: gpu.stats().csv(),
        windows,
    }
}

/// One simulation pass for the idle-skip benchmark: runs `trace` with the
/// event-horizon scheduler on or off and returns
/// `(final cycles, cycles skipped, FNV-1a hash over every dumped frame)`.
///
/// # Panics
///
/// Panics if the trace fails to compile or the watchdog expires.
pub fn run_skip_pass(mut config: GpuConfig, trace: &GlTrace, skip: bool) -> (u64, u64, u64) {
    config.display.width = trace.width;
    config.display.height = trace.height;
    let commands = compile(trace.width, trace.height, &trace.calls).expect("trace compiles");
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 2_000_000_000;
    gpu.skip_idle = skip;
    let result = gpu.run_trace(&commands).expect("simulation drains");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for frame in &result.framebuffers {
        for &b in &frame.rgba {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (result.cycles, gpu.cycles_skipped(), hash)
}

/// The Section 5 case-study configuration with `tus` texture units, the
/// given scheduler and a statistics window.
pub fn case_study_config(tus: usize, sched: ShaderScheduling, window: u64) -> GpuConfig {
    let mut c = GpuConfig::case_study(tus, sched);
    c.stats.window_cycles = window;
    c
}

/// Harness workload scale: `--full` runs closer to paper scale.
pub fn harness_params(full: bool) -> WorkloadParams {
    if full {
        WorkloadParams {
            width: 320,
            height: 240,
            frames: 5,
            texture_size: 256,
            detail: 2,
            ..Default::default()
        }
    } else {
        WorkloadParams {
            width: 160,
            height: 120,
            frames: 2,
            texture_size: 128,
            detail: 1,
            ..Default::default()
        }
    }
}

/// Whether `--full` was passed on the command line.
pub fn is_full_run() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// A dependency-free measurement loop for the `harness = false` benches:
/// runs `f` for one warm-up pass plus `samples` timed passes and prints
/// the best and mean wall-clock time per pass.
///
/// The best-of-N is the headline number (least scheduler noise); the mean
/// is printed alongside so outliers are visible. `iters_per_sample`
/// repeats `f` inside one timed sample for sub-microsecond work.
pub fn bench_case<F: FnMut()>(name: &str, samples: u32, iters_per_sample: u32, mut f: F) {
    f(); // warm-up: first pass pays cold caches and lazy init
    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..samples.max(1) {
        let start = std::time::Instant::now();
        for _ in 0..iters_per_sample.max(1) {
            f();
        }
        let per_iter = start.elapsed().as_secs_f64() / f64::from(iters_per_sample.max(1));
        best = best.min(per_iter);
        total += per_iter;
    }
    let mean = total / f64::from(samples.max(1));
    println!("{name:<40} best {:>12}  mean {:>12}", fmt_secs(best), fmt_secs(mean));
}

/// Serial-vs-parallel timing of one sweep grid (see [`bench_grid`]).
#[derive(Debug, Clone)]
pub struct GridTiming {
    /// Number of configurations in the grid.
    pub configs: usize,
    /// Wall seconds for the serial pass (1 worker).
    pub serial_secs: f64,
    /// Wall seconds for the parallel pass.
    pub parallel_secs: f64,
}

impl GridTiming {
    /// Serial time over parallel time — the sweep-harness scaling factor.
    pub fn scaling(&self) -> f64 {
        if self.parallel_secs <= 0.0 {
            return 0.0;
        }
        self.serial_secs / self.parallel_secs
    }
}

/// The standard 8-config sweep grid: texture-unit counts 1–4 crossed with
/// both shader schedulers, over a small doom3-like trace.
pub fn standard_grid() -> Vec<attila_core::sweep::SweepJob> {
    let mut jobs = Vec::new();
    for &sched in &[ShaderScheduling::ThreadWindow, ShaderScheduling::InOrderQueue] {
        for tus in 1..=4 {
            let name = match sched {
                ShaderScheduling::ThreadWindow => "window",
                ShaderScheduling::InOrderQueue => "queue",
            };
            jobs.push(attila_core::sweep::SweepJob {
                label: format!("tus={tus},sched={name}"),
                config: GpuConfig::case_study(tus, sched),
                threads: 1,
            });
        }
    }
    jobs
}

/// Times the standard 8-config grid serially and across `workers` sweep
/// threads, asserting the two merged reports are identical first.
pub fn bench_grid(full: bool, workers: usize) -> GridTiming {
    use std::sync::Arc;
    let p = if full {
        WorkloadParams { width: 96, height: 96, frames: 1, texture_size: 128, ..Default::default() }
    } else {
        WorkloadParams { width: 64, height: 64, frames: 1, texture_size: 64, ..Default::default() }
    };
    let trace = attila_gl::workloads::doom3_like(p);
    let jobs = {
        let mut jobs = standard_grid();
        for j in &mut jobs {
            j.config.display.width = trace.width;
            j.config.display.height = trace.height;
        }
        jobs
    };
    let commands =
        Arc::new(compile(trace.width, trace.height, &trace.calls).expect("trace compiles"));

    // Determinism gate before timing anything: the merged report must not
    // depend on the worker count.
    let serial_once = attila_core::sweep::run_sweep(jobs.clone(), Arc::clone(&commands), 1);
    let parallel_once =
        attila_core::sweep::run_sweep(jobs.clone(), Arc::clone(&commands), workers);
    assert_eq!(
        attila_core::sweep::sweep_csv(&serial_once),
        attila_core::sweep::sweep_csv(&parallel_once),
        "sweep results must be independent of the worker count"
    );

    let start = std::time::Instant::now();
    let _ = attila_core::sweep::run_sweep(jobs.clone(), Arc::clone(&commands), 1);
    let serial_secs = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let _ = attila_core::sweep::run_sweep(jobs.clone(), commands, workers);
    let parallel_secs = start.elapsed().as_secs_f64();
    GridTiming { configs: jobs.len(), serial_secs, parallel_secs }
}

/// Renders a duration in the most readable unit (s/ms/µs/ns).
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attila_gl::workloads;

    #[test]
    fn run_workload_produces_metrics() {
        let trace = workloads::quickstart_trace(64, 64);
        let m = run_workload(GpuConfig::baseline(), &trace);
        assert!(m.cycles > 0);
        assert_eq!(m.frames, 1);
        assert!(m.fps > 0.0);
        assert!(!m.stats_csv.is_empty());
        assert_eq!(m.shader_busy.len(), 2);
    }

    #[test]
    fn case_study_config_respects_knobs() {
        let c = case_study_config(2, ShaderScheduling::InOrderQueue, 5_000);
        assert_eq!(c.texture.units, 2);
        assert_eq!(c.stats.window_cycles, 5_000);
    }
}
