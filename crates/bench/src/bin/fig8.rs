//! Figure 8: texture cache hit rate and texture memory bandwidth as the
//! texture-unit count changes (thread-window scheduler), plus the hit
//! rate sampled every 10 K cycles for the 3-TU configuration.
//!
//! Paper expectation: with more TUs, quads from overlapping regions land
//! on different units, the same texture data is fetched by several
//! caches, and both the miss count and the consumed memory bandwidth
//! grow.

use attila_bench::{case_study_config, harness_params, is_full_run, pct, run_workload};
use attila_core::config::ShaderScheduling;
use attila_core::gpu::Gpu;
use attila_gl::{compile, workloads};

fn main() {
    let full = is_full_run();
    let params = harness_params(full);
    println!("== Figure 8: texture cache hit rate and texture bandwidth ==");
    println!();

    let traces = [
        ("DOOM3-like", workloads::doom3_like(params)),
        ("UT2004-like", workloads::ut2004_like(params)),
    ];
    println!(
        "{:<12} {:>4} {:>10} {:>14} {:>16}",
        "trace", "TUs", "hit rate", "tex bytes", "bytes/frame"
    );
    for (name, trace) in &traces {
        for tus in [3usize, 2, 1] {
            let m = run_workload(
                case_study_config(tus, ShaderScheduling::ThreadWindow, 10_000),
                trace,
            );
            println!(
                "{:<12} {:>4} {:>10} {:>14} {:>16.1}",
                name,
                tus,
                pct(m.tex_hit_rate),
                m.tex_bytes,
                m.tex_bytes as f64 / m.frames.max(1) as f64
            );
        }
        println!();
    }

    // Time-sampled hit rate for the 3-TU DOOM3-like run (the paper plots
    // one frame sampled each 10K cycles).
    println!("-- texture cache hit rate per 10K-cycle window (DOOM3-like, 3 TUs) --");
    let trace = &traces[0].1;
    let mut config = case_study_config(3, ShaderScheduling::ThreadWindow, 10_000);
    config.display.width = trace.width;
    config.display.height = trace.height;
    let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");
    let mut gpu = Gpu::new(config);
    gpu.keep_frames = false;
    gpu.max_cycles = 2_000_000_000;
    gpu.run_trace(&commands).expect("drains");
    // Reconstruct windowed hit rate from per-window hit/miss-ish proxies:
    // requests and bytes. We emit the per-window texture requests and
    // bytes read; rate = 1 - misses/accesses is end-to-end above.
    println!("window,requests,bytes_read");
    let stats = gpu.stats();
    let req: Vec<f64> = (0..3)
        .filter_map(|u| stats.window_series(&format!("Texture{u}.requests")))
        .fold(Vec::new(), |mut acc, s| {
            if acc.is_empty() {
                acc = s.to_vec();
            } else {
                for (a, b) in acc.iter_mut().zip(s) {
                    *a += b;
                }
            }
            acc
        });
    let bytes: Vec<f64> = (0..3)
        .filter_map(|u| stats.window_series(&format!("Texture{u}.bytes_read")))
        .fold(Vec::new(), |mut acc, s| {
            if acc.is_empty() {
                acc = s.to_vec();
            } else {
                for (a, b) in acc.iter_mut().zip(s) {
                    *a += b;
                }
            }
            acc
        });
    for (w, (r, b)) in req.iter().zip(bytes.iter()).enumerate() {
        println!("{w},{r},{b}");
    }
    println!();
    println!("paper shape: more TUs -> lower hit rate, more texture bandwidth.");
}
