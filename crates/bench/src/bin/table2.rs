//! Table 2: the baseline cache configurations (16 KB, 4-way, 256-byte
//! lines) plus measured hit rates and compression/fast-clear savings on
//! the synthetic workloads.

use attila_bench::{harness_params, is_full_run, pct, run_workload};
use attila_core::config::GpuConfig;
use attila_core::gpu::Gpu;
use attila_gl::{compile, workloads};

fn main() {
    let c = GpuConfig::baseline();
    println!("== Table 2: baseline ATTILA caches ==");
    println!(
        "{:<10} {:>10} {:>14} {:>8} {:>12} {:>8}",
        "cache", "size (KB)", "associativity", "sets", "line (B)", "ports"
    );
    for (name, cc) in [
        ("Texture", c.texture.cache),
        ("Z", c.zstencil.cache),
        ("Color", c.colorwrite.cache),
    ] {
        println!(
            "{:<10} {:>10} {:>14} {:>8} {:>12} {:>8}",
            name,
            cc.size_bytes / 1024,
            cc.ways,
            cc.size_bytes / (cc.line_bytes * cc.ways),
            cc.line_bytes,
            cc.ports
        );
    }

    // Measured behaviour on the two game-like workloads.
    let full = is_full_run();
    let params = harness_params(full);
    println!();
    println!("== measured cache behaviour ==");
    for (name, trace) in [
        ("DOOM3-like", workloads::doom3_like(params)),
        ("UT2004-like", workloads::ut2004_like(params)),
    ] {
        let m = run_workload(GpuConfig::baseline(), &trace);
        println!("{name}: texture hit rate {}", pct(m.tex_hit_rate));

        // Z compression / fast clear savings need direct unit access.
        let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");
        let mut config = GpuConfig::baseline();
        config.display.width = trace.width;
        config.display.height = trace.height;
        let mut gpu = Gpu::new(config);
        gpu.keep_frames = false;
        gpu.max_cycles = 2_000_000_000;
        gpu.run_trace(&commands).expect("drains");
        let z_bytes: u64 = gpu.memory().client_bytes(attila_mem::Client::ZStencil(0))
            + gpu.memory().client_bytes(attila_mem::Client::ZStencil(1));
        let c_bytes: u64 = gpu.memory().client_bytes(attila_mem::Client::ColorWrite(0))
            + gpu.memory().client_bytes(attila_mem::Client::ColorWrite(1));
        println!(
            "{name}: Z-buffer traffic {z_bytes} B, colour traffic {c_bytes} B (after 1:2/1:4 Z compression and fast clears)"
        );
    }
}
