//! Figure 10: rendered-frame validation. The paper compares the
//! simulator's DAC dump against a GeForce 5900 frame and found three
//! rendering bugs that way; our reference is the golden-model renderer.
//! Dumps both images as PPM files and reports the pixel diff.

use attila_bench::{harness_params, is_full_run};
use attila_core::config::{GpuConfig, ShaderScheduling};
use attila_core::gpu::Gpu;
use attila_gl::{compile, diff_frames, golden_frames, verify, workloads};

fn main() {
    let full = is_full_run();
    let params = harness_params(full);
    println!("== Figure 10: frame validation against the golden model ==");

    let traces = [
        ("doom3_like", workloads::doom3_like(params)),
        ("ut2004_like", workloads::ut2004_like(params)),
    ];
    let out_dir = std::path::Path::new("target/fig10");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    let mut all_identical = true;
    for (name, trace) in &traces {
        let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");
        let mut config = GpuConfig::case_study(3, ShaderScheduling::ThreadWindow);
        config.display.width = trace.width;
        config.display.height = trace.height;
        let mut gpu = Gpu::new(config);
        gpu.max_cycles = 2_000_000_000;
        let result = gpu.run_trace(&commands).expect("drains");
        let golden = golden_frames(&commands, 64 * 1024 * 1024);
        for (i, (sim, gold)) in result.framebuffers.iter().zip(&golden).enumerate() {
            let diff = diff_frames(sim, gold);
            let sim_path = out_dir.join(format!("{name}_frame{i}_sim.ppm"));
            let gold_path = out_dir.join(format!("{name}_frame{i}_ref.ppm"));
            verify::write_ppm(sim, &sim_path).expect("write sim ppm");
            verify::write_ppm(gold, &gold_path).expect("write ref ppm");
            println!(
                "{name} frame {i}: {} -> {} / {}",
                diff,
                sim_path.display(),
                gold_path.display()
            );
            all_identical &= diff.identical();
        }
    }
    println!();
    if all_identical {
        println!("every frame is bit-identical to the reference renderer.");
    } else {
        println!("MISMATCH: the timing model corrupted at least one frame (a bug, as in the paper's Figure 10 findings).");
    }
}
