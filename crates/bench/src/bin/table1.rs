//! Table 1: bandwidths, queue sizes and latencies of the baseline ATTILA
//! architecture — the configured values, plus measured steady-state
//! throughput of the key units under a fill-rate microworkload to show
//! the pipeline actually sustains its configured rates.

use attila_bench::{is_full_run, run_workload};
use attila_core::config::GpuConfig;
use attila_gl::workloads;

fn main() {
    let c = GpuConfig::baseline();
    println!("== Table 1: baseline ATTILA unit configuration ==");
    println!(
        "{:<22} {:>18} {:>18} {:>12} {:>10}",
        "unit", "input bw", "output bw", "queue", "latency"
    );
    let row = |unit: &str, ibw: &str, obw: &str, q: usize, lat: String| {
        println!("{unit:<22} {ibw:>18} {obw:>18} {q:>12} {lat:>10}");
    };
    row("Streamer", "1 index/cyc", "1 vertex/cyc", c.streamer.input_queue, "Mem".into());
    row(
        "Primitive Assembly",
        "1 vertex/cyc",
        "1 triangle/cyc",
        c.primitive_assembly.input_queue,
        c.primitive_assembly.latency.to_string(),
    );
    row(
        "Clipping",
        "1 triangle/cyc",
        "1 triangle/cyc",
        c.clipper.input_queue,
        c.clipper.latency.to_string(),
    );
    row(
        "Triangle Setup",
        "1 triangle/cyc",
        "1 triangle/cyc",
        c.setup.input_queue,
        c.setup.latency.to_string(),
    );
    row(
        "Fragment Generation",
        "1 triangle/cyc",
        &format!("{}x64 frag/cyc", c.fraggen.tiles_per_cycle),
        c.fraggen.input_queue,
        c.fraggen.latency.to_string(),
    );
    row(
        "Hierarchical Z",
        &format!("{}x64 frag/cyc", c.hz.tiles_per_cycle),
        &format!("{}x64 frag/cyc", c.hz.tiles_per_cycle),
        c.hz.input_queue,
        c.hz.latency.to_string(),
    );
    row(
        "Z Test",
        &format!("{} frag/cyc", c.zstencil.frags_per_cycle),
        &format!("{} frag/cyc", c.zstencil.frags_per_cycle),
        c.zstencil.input_queue * 4,
        format!("{}+Mem", c.zstencil.latency),
    );
    row(
        "Interpolator",
        &format!("{} frag/cyc", c.interpolator.frags_per_cycle),
        &format!("{} frag/cyc", c.interpolator.frags_per_cycle),
        0,
        format!(
            "{} to {}",
            c.interpolator.base_latency,
            c.interpolator.base_latency + 6 * c.interpolator.latency_per_attribute
        ),
    );
    row(
        "Color Write",
        &format!("{} frag/cyc", c.colorwrite.frags_per_cycle),
        "-",
        c.colorwrite.input_queue * 4,
        format!("{}+Mem", c.colorwrite.latency),
    );
    row(
        "Vertex Shader",
        "1 vertex/cyc",
        "1 vertex/cyc",
        c.shader.vertex_threads,
        "variable".into(),
    );
    row(
        "Fragment Shader",
        &format!("{} frag/cyc", c.shader.group_size),
        &format!("{} frag/cyc", c.shader.group_size),
        c.shader.max_inputs / c.shader.fragment_units,
        "variable".into(),
    );
    println!();
    println!(
        "memory: {} channels x {} B/cyc, {} B system bus x2; shader pool: {} units, {} inputs, {} registers",
        c.memory.channels,
        c.memory.bytes_per_cycle_per_channel,
        c.memory.system_bus_bytes_per_cycle,
        c.shader.fragment_units,
        c.shader.max_inputs,
        c.shader.temp_registers
    );

    // Measured: sustained fragment throughput on an untextured fill-rate
    // workload (ROP-bound: 2 units x 4 frag/cyc = 8 frag/cyc peak).
    let full = is_full_run();
    let (w, h, layers) = if full { (320, 240, 16) } else { (160, 120, 8) };
    let trace = workloads::fillrate(w, h, layers, false);
    let m = run_workload(GpuConfig::baseline(), &trace);
    let frags = (w * h * layers) as f64;
    println!();
    println!("== measured: fill-rate microworkload ({w}x{h}, {layers} layers) ==");
    println!("cycles: {}", m.cycles);
    println!(
        "fragments/cycle sustained: {:.2} (peak {} with {} color-write units x {} frag/cyc)",
        frags / m.cycles as f64,
        c.colorwrite.units as u32 * c.colorwrite.frags_per_cycle,
        c.colorwrite.units,
        c.colorwrite.frags_per_cycle
    );
}
