//! `bench5` — the signal-transport/flat-schedule benchmark behind
//! `BENCH_5.json`: cycles-per-wall-second on the standard workloads, in
//! release mode, with `Gpu::run_trace` alone inside the timed region.
//!
//! Two-phase use, so before/after numbers for a refactor come from the
//! same harness:
//!
//! ```sh
//! # on the old tree: record the "before" numbers
//! cargo run --release -p attila-bench --bin bench5 -- --out before.json
//! # on the new tree: measure again and merge the baseline in
//! cargo run --release -p attila-bench --bin bench5 -- \
//!     --baseline before.json --out BENCH_5.json
//! ```
//!
//! Without `--baseline`, the report's `before` mirrors `after` (ratio 1).

use std::time::Instant;

use attila_bench::bench_grid;
use attila_core::config::GpuConfig;
use attila_core::gpu::Gpu;
use attila_gl::workloads::{self, WorkloadParams};
use attila_gl::{compile, GlTrace};
use attila_json::Json;

/// One measured workload: `(name, cycles, best seconds per pass)`, plus
/// the best threaded pass when `--threads` asks for one.
struct Measurement {
    name: &'static str,
    cycles: u64,
    secs: f64,
    threaded_secs: Option<f64>,
}

fn standard_workloads(full: bool) -> Vec<(&'static str, GlTrace)> {
    let p = if full {
        WorkloadParams { width: 160, height: 120, frames: 2, texture_size: 256, ..Default::default() }
    } else {
        WorkloadParams { width: 96, height: 96, frames: 1, texture_size: 128, ..Default::default() }
    };
    vec![
        ("quickstart", workloads::quickstart_trace(p.width, p.height)),
        ("doom3", workloads::doom3_like(p)),
        ("fillrate", workloads::fillrate(p.width, p.height, 4, true)),
        (
            "texture_stream",
            workloads::texture_stream(WorkloadParams {
                frames: if full { 4 } else { 3 },
                ..p
            }),
        ),
    ]
}

/// Times `run_trace` for one workload: one untimed warm-up pass plus
/// `samples` timed passes; returns the cycle count and the best pass.
/// `threads > 1` runs the clock-domain worker pool (bit-identical to the
/// serial loop, so the cycle count is the same either way).
fn measure(trace: &GlTrace, samples: u32, threads: usize) -> (u64, f64) {
    let mut config = GpuConfig::baseline();
    config.display.width = trace.width;
    config.display.height = trace.height;
    let commands = compile(trace.width, trace.height, &trace.calls).expect("trace compiles");
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for i in 0..=samples {
        let mut gpu = Gpu::with_threads(config.clone(), threads);
        gpu.max_cycles = 2_000_000_000;
        gpu.keep_frames = false;
        let start = Instant::now();
        let result = gpu.run_trace(&commands).expect("simulation drains");
        let elapsed = start.elapsed().as_secs_f64();
        cycles = result.cycles;
        if i > 0 {
            best = best.min(elapsed);
        }
    }
    (cycles, best)
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn load_baseline(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let json = attila_json::parse(&text).expect("baseline parses");
    let mut out = Vec::new();
    if let Some(Json::Arr(rows)) = json.get("workloads") {
        for row in rows {
            let (Some(name), Some(cps)) = (
                row.get("name").and_then(Json::as_str),
                row.get("after_cycles_per_sec").and_then(Json::as_f64),
            ) else {
                continue;
            };
            out.push((name.to_string(), cps));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_5.json");
    let mut baseline_path: Option<String> = None;
    let mut samples = 3u32;
    let mut full = false;
    let mut workers_arg: Option<usize> = None;
    let mut threads = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--baseline" => baseline_path = Some(it.next().expect("--baseline needs a value").clone()),
            "--samples" => samples = it.next().expect("--samples needs a value").parse().unwrap(),
            "--full" => full = true,
            "--workers" => {
                workers_arg =
                    Some(it.next().expect("--workers needs a value").parse().expect("--workers"))
            }
            "--threads" => {
                threads = it.next().expect("--threads needs a value").parse().expect("--threads");
                assert!(threads >= 1, "--threads needs at least 1");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    let baseline = baseline_path.as_deref().map(load_baseline).unwrap_or_default();

    let mut rows = Vec::new();
    let mut measurements = Vec::new();
    for (name, trace) in standard_workloads(full) {
        let (cycles, secs) = measure(&trace, samples, 1);
        println!("{name:<16} {cycles:>9} cycles  {:>8.2} ms  {:>7.2} Mcyc/s", secs * 1e3, cycles as f64 / secs / 1e6);
        let threaded_secs = (threads > 1).then(|| {
            let (tcycles, tsecs) = measure(&trace, samples, threads);
            assert_eq!(tcycles, cycles, "{name}: threaded run must be cycle-identical");
            println!(
                "{name:<16} {threads} threads {:>15.2} ms  {:>7.2} Mcyc/s  ({:.2}x serial)",
                tsecs * 1e3,
                cycles as f64 / tsecs / 1e6,
                secs / tsecs,
            );
            tsecs
        });
        measurements.push(Measurement { name, cycles, secs, threaded_secs });
    }
    for m in &measurements {
        let after = m.cycles as f64 / m.secs;
        let before = baseline
            .iter()
            .find(|(n, _)| n == m.name)
            .map(|&(_, cps)| cps)
            .unwrap_or(after);
        let mut row = vec![
            ("name".into(), Json::Str(m.name.into())),
            ("cycles".into(), num(m.cycles as f64)),
            ("best_pass_secs".into(), num(m.secs)),
            ("before_cycles_per_sec".into(), num(before)),
            ("after_cycles_per_sec".into(), num(after)),
            ("speedup".into(), num(after / before)),
        ];
        if let Some(tsecs) = m.threaded_secs {
            row.push(("threaded_best_pass_secs".into(), num(tsecs)));
            row.push(("threaded_cycles_per_sec".into(), num(m.cycles as f64 / tsecs)));
            row.push(("thread_speedup".into(), num(m.secs / tsecs)));
        }
        rows.push(Json::Obj(row));
        println!(
            "{:<16} before {:>9.0} cyc/s  after {:>9.0} cyc/s  speedup {:>5.2}x",
            m.name,
            before,
            after,
            (m.cycles as f64 / m.secs) / before
        );
    }

    // Sweep scaling: the same 8-config grid run serially and across the
    // thread-pool sweep harness. On a single-core box the ratio is ~1 by
    // construction; the report records the worker count alongside.
    // `--workers` pins the pool size so multi-core scaling numbers are
    // reproducible regardless of the measuring machine's core count.
    let workers = workers_arg
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let sweep = bench_grid(full, workers);
    println!(
        "sweep: {} configs  serial {:.2}s  parallel({} workers) {:.2}s  scaling {:.2}x",
        sweep.configs, sweep.serial_secs, workers, sweep.parallel_secs, sweep.scaling()
    );

    let bench_name = if threads > 1 {
        "clock-domain threaded schedule vs the serial loop"
    } else {
        "zero-allocation signal transport + flat clock schedule"
    };
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str(bench_name.into())),
        ("mode".into(), Json::Str(if full { "full" } else { "quick" }.into())),
        ("samples".into(), num(f64::from(samples))),
        ("threads".into(), num(threads as f64)),
        (
            // Thread scaling is only meaningful relative to the host's
            // real core count (a 1-core box cannot speed up, only stay
            // bit-identical).
            "host_cores".into(),
            num(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64),
        ),
        ("workloads".into(), Json::Arr(rows)),
        (
            "sweep".into(),
            Json::Obj(vec![
                ("configs".into(), num(sweep.configs as f64)),
                ("workers".into(), num(workers as f64)),
                (
                    // Scaling is only meaningful relative to the cores
                    // that were actually available to the pool.
                    "host_cores".into(),
                    num(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64),
                ),
                ("serial_secs".into(), num(sweep.serial_secs)),
                ("parallel_secs".into(), num(sweep.parallel_secs)),
                ("scaling".into(), num(sweep.scaling())),
            ]),
        ),
    ]);
    std::fs::write(&out_path, report.pretty()).expect("write report");
    println!("report -> {out_path}");
}
