//! Figure 9: workload characterization — per-unit utilization sampled
//! every 10 K cycles for a DOOM3-like frame under three configurations:
//! thread window with 3 TUs, thread window with 1 TU, and the in-order
//! input queue with 3 TUs.
//!
//! Paper expectation: with the input queue every unit is under-utilized
//! (texture latency exposed); with the window and 1 TU the GPU is
//! completely texture-limited (95–99% TU utilization).

use attila_bench::{case_study_config, harness_params, is_full_run, pct, run_workload};
use attila_core::config::ShaderScheduling;
use attila_gl::workloads;

fn main() {
    let full = is_full_run();
    let params = harness_params(full);
    let trace = workloads::doom3_like(params);
    let window: u64 = 10_000;

    println!("== Figure 9: unit utilization over time (DOOM3-like) ==");
    let configs = [
        ("window-3TU", ShaderScheduling::ThreadWindow, 3usize),
        ("window-1TU", ShaderScheduling::ThreadWindow, 1),
        ("queue-3TU", ShaderScheduling::InOrderQueue, 3),
    ];
    for (label, sched, tus) in configs {
        let m = run_workload(case_study_config(tus, sched, window), &trace);
        println!();
        println!("-- {label}: {} cycles --", m.cycles);
        // Aggregate utilization over the whole run.
        let shader_util: f64 = m.shader_busy.iter().map(|b| *b as f64).sum::<f64>()
            / (m.cycles as f64 * m.shader_busy.len() as f64);
        let tu_util: f64 = m.texture_busy.iter().map(|b| *b as f64).sum::<f64>()
            / (m.cycles as f64 * m.texture_busy.len() as f64);
        println!("shader utilization: {}", pct(shader_util));
        println!("texture utilization: {}", pct(tu_util));
        // Time series: one row per 10K-cycle window, busy fraction.
        println!("window,{}", m.windows.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(","));
        let rows = m.windows.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
        for w in 0..rows {
            let mut row = format!("{w}");
            for (_, series) in &m.windows {
                let v = series.get(w).copied().unwrap_or(0.0) / window as f64;
                row.push_str(&format!(",{v:.3}"));
            }
            println!("{row}");
        }
    }
    println!();
    println!("paper shape: queue under-utilizes everything; window-1TU saturates the TU (95-99%).");
}
