//! Figure 7: performance degradation and frame rate when sweeping the
//! texture-unit count from 3 to 1, for the thread-window and in-order
//! input-queue shader schedulers, on Doom3-like and UT2004-like traces.
//!
//! Paper expectation: the thread-window configuration takes a small hit
//! (5–10%) going 3→2 TUs and a relatively large hit 3→1; the input-queue
//! configuration is too small to hide texture latency, so the TU count
//! barely affects (already-poor) performance.

use attila_bench::{case_study_config, harness_params, is_full_run, run_workload};
use attila_core::config::ShaderScheduling;
use attila_gl::workloads;

fn main() {
    let full = is_full_run();
    let params = harness_params(full);
    println!("== Figure 7: shader ALUs vs texture units ==");
    println!(
        "case-study GPU: 3 unified shaders, 1 ROP, 2 DDR channels, 96-thread window / 384-input queue, 1536 temp registers"
    );
    println!(
        "workloads at {}x{} x{} frames (paper: 1024x768, 40 frames){}",
        params.width,
        params.height,
        params.frames,
        if full { " [--full]" } else { " (pass --full for paper-scale)" }
    );
    println!();

    let traces = [
        ("DOOM3-like", workloads::doom3_like(params)),
        ("UT2004-like", workloads::ut2004_like(params)),
    ];

    println!(
        "{:<12} {:<14} {:>4} {:>12} {:>10} {:>10}",
        "trace", "scheduler", "TUs", "cycles", "rel perf", "fps@600MHz"
    );
    for (name, trace) in &traces {
        for sched in [ShaderScheduling::ThreadWindow, ShaderScheduling::InOrderQueue] {
            let mut base_cycles = None;
            for tus in [3usize, 2, 1] {
                let m = run_workload(case_study_config(tus, sched, 10_000), trace);
                let base = *base_cycles.get_or_insert(m.cycles);
                let rel = base as f64 / m.cycles as f64;
                println!(
                    "{:<12} {:<14} {:>4} {:>12} {:>9.1}% {:>10.2}",
                    name,
                    format!("{sched:?}"),
                    tus,
                    m.cycles,
                    rel * 100.0,
                    m.fps
                );
            }
            println!();
        }
    }
    println!("paper shape: window 3->2 small hit, 3->1 large; queue flat and slow.");
}
