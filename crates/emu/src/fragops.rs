//! Fragment operations: depth test, stencil test, blending, Z compression.
//!
//! The paper's `FragmentOperatorEmulator` "implements the Z and Stencil
//! test functions, the compression algorithms for the Z cache and the
//! Color Write blend and update functions". The depth/stencil buffer
//! stores 8 bits of stencil and 24 bits of depth per element (§2.2); the Z
//! cache applies a lossless compression with 1:2 and 1:4 ratios, and both
//! ROP caches support fast clear.

use crate::vector::Vec4;

/// Depth/stencil compare functions (the full OpenGL set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompareFunc {
    /// Never passes.
    Never,
    /// Passes if incoming < stored.
    #[default]
    Less,
    /// Passes if incoming == stored.
    Equal,
    /// Passes if incoming <= stored.
    LEqual,
    /// Passes if incoming > stored.
    Greater,
    /// Passes if incoming != stored.
    NotEqual,
    /// Passes if incoming >= stored.
    GEqual,
    /// Always passes.
    Always,
}

impl CompareFunc {
    /// Applies the function.
    pub fn test(self, incoming: u32, stored: u32) -> bool {
        match self {
            CompareFunc::Never => false,
            CompareFunc::Less => incoming < stored,
            CompareFunc::Equal => incoming == stored,
            CompareFunc::LEqual => incoming <= stored,
            CompareFunc::Greater => incoming > stored,
            CompareFunc::NotEqual => incoming != stored,
            CompareFunc::GEqual => incoming >= stored,
            CompareFunc::Always => true,
        }
    }
}

/// Stencil update operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StencilOp {
    /// Keep the stored value.
    #[default]
    Keep,
    /// Set to zero.
    Zero,
    /// Replace with the reference value.
    Replace,
    /// Saturating increment.
    Incr,
    /// Wrapping increment.
    IncrWrap,
    /// Saturating decrement.
    Decr,
    /// Wrapping decrement.
    DecrWrap,
    /// Bitwise invert.
    Invert,
}

impl StencilOp {
    /// Applies the operation to an 8-bit stencil value.
    pub fn apply(self, stored: u8, reference: u8) -> u8 {
        match self {
            StencilOp::Keep => stored,
            StencilOp::Zero => 0,
            StencilOp::Replace => reference,
            StencilOp::Incr => stored.saturating_add(1),
            StencilOp::IncrWrap => stored.wrapping_add(1),
            StencilOp::Decr => stored.saturating_sub(1),
            StencilOp::DecrWrap => stored.wrapping_sub(1),
            StencilOp::Invert => !stored,
        }
    }
}

/// Depth test state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthState {
    /// Whether depth testing is enabled.
    pub enabled: bool,
    /// The compare function.
    pub func: CompareFunc,
    /// Whether passing fragments write their depth.
    pub write: bool,
}

impl Default for DepthState {
    fn default() -> Self {
        DepthState { enabled: false, func: CompareFunc::Less, write: true }
    }
}

/// Stencil test state (single-sided; the paper lists double-sided stencil
/// as future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilState {
    /// Whether stencil testing is enabled.
    pub enabled: bool,
    /// The compare function between `reference` and the stored value.
    pub func: CompareFunc,
    /// The reference value.
    pub reference: u8,
    /// AND-mask applied to both reference and stored value before compare.
    pub read_mask: u8,
    /// Bits of the stencil buffer that updates may change.
    pub write_mask: u8,
    /// Update when the stencil test fails.
    pub sfail: StencilOp,
    /// Update when stencil passes but depth fails.
    pub dpfail: StencilOp,
    /// Update when both pass.
    pub dppass: StencilOp,
}

impl Default for StencilState {
    fn default() -> Self {
        StencilState {
            enabled: false,
            func: CompareFunc::Always,
            reference: 0,
            read_mask: 0xff,
            write_mask: 0xff,
            sfail: StencilOp::Keep,
            dpfail: StencilOp::Keep,
            dppass: StencilOp::Keep,
        }
    }
}

/// Maximum representable 24-bit depth value.
pub const DEPTH_MAX: u32 = 0x00ff_ffff;

/// Quantizes window-space depth in `[0, 1]` to the 24-bit buffer format.
pub fn quantize_depth(z: f32) -> u32 {
    (z.clamp(0.0, 1.0) as f64 * DEPTH_MAX as f64).round() as u32
}

/// Packs stencil (high byte) and 24-bit depth into one buffer word.
pub fn pack_depth_stencil(depth: u32, stencil: u8) -> u32 {
    ((stencil as u32) << 24) | (depth & DEPTH_MAX)
}

/// Unpacks a buffer word into `(depth, stencil)`.
pub fn unpack_depth_stencil(word: u32) -> (u32, u8) {
    (word & DEPTH_MAX, (word >> 24) as u8)
}

/// Outcome of the combined stencil + depth test for one fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZStencilResult {
    /// Whether the fragment survives to colour write.
    pub pass: bool,
    /// The new buffer word (may equal the old one).
    pub new_word: u32,
    /// Whether the word changed (controls dirty tracking / bandwidth).
    pub written: bool,
}

/// Applies the OpenGL stencil-then-depth pipeline to one fragment.
///
/// `frag_depth` is the quantized 24-bit fragment depth, `stored` the
/// current `S8Z24` buffer word.
pub fn z_stencil_test(
    depth: DepthState,
    stencil: StencilState,
    frag_depth: u32,
    stored: u32,
) -> ZStencilResult {
    let (stored_z, stored_s) = unpack_depth_stencil(stored);

    let stencil_pass = !stencil.enabled
        || stencil.func.test(
            (stencil.reference & stencil.read_mask) as u32,
            (stored_s & stencil.read_mask) as u32,
        );

    let depth_pass = !depth.enabled || depth.func.test(frag_depth, stored_z);

    let mut new_s = stored_s;
    if stencil.enabled {
        let op = if !stencil_pass {
            stencil.sfail
        } else if !depth_pass {
            stencil.dpfail
        } else {
            stencil.dppass
        };
        let updated = op.apply(stored_s, stencil.reference);
        new_s = (stored_s & !stencil.write_mask) | (updated & stencil.write_mask);
    }

    let pass = stencil_pass && depth_pass;
    let new_z = if pass && depth.enabled && depth.write { frag_depth } else { stored_z };
    let new_word = pack_depth_stencil(new_z, new_s);
    ZStencilResult { pass, new_word, written: new_word != stored }
}

/// Blend factors (OpenGL `glBlendFunc` set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlendFactor {
    /// `0`.
    Zero,
    /// `1`.
    #[default]
    One,
    /// Source colour.
    SrcColor,
    /// `1 - source colour`.
    OneMinusSrcColor,
    /// Destination colour.
    DstColor,
    /// `1 - destination colour`.
    OneMinusDstColor,
    /// Source alpha.
    SrcAlpha,
    /// `1 - source alpha`.
    OneMinusSrcAlpha,
    /// Destination alpha.
    DstAlpha,
    /// `1 - destination alpha`.
    OneMinusDstAlpha,
    /// Constant blend colour.
    ConstColor,
    /// `1 - constant colour`.
    OneMinusConstColor,
    /// `min(src.a, 1 - dst.a)` on rgb, 1 on alpha.
    SrcAlphaSaturate,
}

impl BlendFactor {
    fn eval(self, src: Vec4, dst: Vec4, constant: Vec4) -> Vec4 {
        match self {
            BlendFactor::Zero => Vec4::ZERO,
            BlendFactor::One => Vec4::ONE,
            BlendFactor::SrcColor => src,
            BlendFactor::OneMinusSrcColor => Vec4::ONE - src,
            BlendFactor::DstColor => dst,
            BlendFactor::OneMinusDstColor => Vec4::ONE - dst,
            BlendFactor::SrcAlpha => Vec4::splat(src.w),
            BlendFactor::OneMinusSrcAlpha => Vec4::splat(1.0 - src.w),
            BlendFactor::DstAlpha => Vec4::splat(dst.w),
            BlendFactor::OneMinusDstAlpha => Vec4::splat(1.0 - dst.w),
            BlendFactor::ConstColor => constant,
            BlendFactor::OneMinusConstColor => Vec4::ONE - constant,
            BlendFactor::SrcAlphaSaturate => {
                let f = src.w.min(1.0 - dst.w);
                Vec4::new(f, f, f, 1.0)
            }
        }
    }
}

/// Blend equations (OpenGL `glBlendEquation` set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlendEquation {
    /// `src * sf + dst * df`.
    #[default]
    Add,
    /// `src * sf - dst * df`.
    Subtract,
    /// `dst * df - src * sf`.
    ReverseSubtract,
    /// Component-wise minimum (factors ignored).
    Min,
    /// Component-wise maximum (factors ignored).
    Max,
}

/// Complete blend state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlendState {
    /// Whether blending is enabled; when disabled the source colour
    /// overwrites the pixel.
    pub enabled: bool,
    /// Source factor.
    pub src_factor: BlendFactor,
    /// Destination factor.
    pub dst_factor: BlendFactor,
    /// Equation combining the weighted terms.
    pub equation: BlendEquation,
    /// The constant blend colour.
    pub constant: Vec4,
    /// Per-channel write mask (r, g, b, a).
    pub color_mask: [bool; 4],
}

impl Default for BlendState {
    fn default() -> Self {
        BlendState {
            enabled: false,
            src_factor: BlendFactor::One,
            dst_factor: BlendFactor::Zero,
            equation: BlendEquation::Add,
            constant: Vec4::ZERO,
            color_mask: [true; 4],
        }
    }
}

/// Applies blending and the colour mask; returns the new framebuffer
/// colour (all channels in `[0, 1]`).
pub fn blend(state: &BlendState, src: Vec4, dst: Vec4) -> Vec4 {
    let out = if !state.enabled {
        src
    } else {
        match state.equation {
            BlendEquation::Min => src.min(dst),
            BlendEquation::Max => src.max(dst),
            eq => {
                let sf = state.src_factor.eval(src, dst, state.constant);
                let df = state.dst_factor.eval(src, dst, state.constant);
                match eq {
                    BlendEquation::Add => src * sf + dst * df,
                    BlendEquation::Subtract => src * sf - dst * df,
                    BlendEquation::ReverseSubtract => dst * df - src * sf,
                    _ => unreachable!(),
                }
            }
        }
    }
    .saturate();
    Vec4::new(
        if state.color_mask[0] { out.x } else { dst.x },
        if state.color_mask[1] { out.y } else { dst.y },
        if state.color_mask[2] { out.z } else { dst.z },
        if state.color_mask[3] { out.w } else { dst.w },
    )
}

/// Packs a normalized colour into RGBA8 bytes.
pub fn pack_rgba8(c: Vec4) -> [u8; 4] {
    let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
    [q(c.x), q(c.y), q(c.z), q(c.w)]
}

/// Unpacks RGBA8 bytes into a normalized colour.
pub fn unpack_rgba8(b: [u8; 4]) -> Vec4 {
    Vec4::new(
        b[0] as f32 / 255.0,
        b[1] as f32 / 255.0,
        b[2] as f32 / 255.0,
        b[3] as f32 / 255.0,
    )
}

// ---------------------------------------------------------------------------
// Z-buffer block compression (paper §2.2, refs [18][19]: ATI-style lossless
// compression with 1:2 and 1:4 ratios, computed when lines are evicted from
// the Z cache)
// ---------------------------------------------------------------------------

/// Values per compression block: a 256-byte cache line holds 64 S8Z24
/// words (an 8×8 pixel tile).
pub const ZBLOCK_WORDS: usize = 64;

/// Achieved compression level for a Z block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZCompression {
    /// Stored raw: 256 bytes.
    Uncompressed,
    /// 1:2 — 128 bytes.
    Half,
    /// 1:4 — 64 bytes.
    Quarter,
}

impl ZCompression {
    /// Compressed size in bytes for a 256-byte line.
    pub fn bytes(self) -> usize {
        match self {
            ZCompression::Uncompressed => 256,
            ZCompression::Half => 128,
            ZCompression::Quarter => 64,
        }
    }
}

/// A compressed Z block: the level tag plus the encoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedZBlock {
    /// Achieved level.
    pub level: ZCompression,
    /// Encoded bytes (length = `level.bytes()` minus nothing — the tag
    /// lives in the block-state memory, not the payload).
    pub data: Vec<u8>,
}

/// Delta bit-width for 1:4 compression: 8 bytes of base/header leaves
/// 56 bytes = 448 bits for 63 deltas → 7 bits each.
const QUARTER_DELTA_BITS: u32 = 7;
/// Delta bit-width for 1:2 compression: 120 bytes = 960 bits for 63 deltas
/// → 15 bits each.
const HALF_DELTA_BITS: u32 = 15;

/// Compresses a 64-word Z/stencil block losslessly. Depth values in a
/// small tile are usually close (they lie on at most a few triangle
/// planes), so an offset-from-minimum encoding reaches 1:4 or 1:2 on most
/// blocks; blocks that don't fit stay uncompressed. Round-trips exactly.
pub fn compress_z_block(words: &[u32; ZBLOCK_WORDS]) -> CompressedZBlock {
    let min = *words.iter().min().expect("non-empty");
    let max_delta = words.iter().map(|w| w - min).max().expect("non-empty");
    let bits_needed = 32 - max_delta.leading_zeros().min(32);
    let try_pack = |delta_bits: u32, level: ZCompression| -> Option<CompressedZBlock> {
        if bits_needed > delta_bits {
            return None;
        }
        let mut data = vec![0u8; level.bytes()];
        data[..4].copy_from_slice(&min.to_le_bytes());
        let mut bitpos = 64usize; // deltas start after an 8-byte header
        for w in words.iter() {
            let delta = w - min;
            for b in 0..delta_bits {
                if (delta >> b) & 1 == 1 {
                    data[bitpos / 8] |= 1 << (bitpos % 8);
                }
                bitpos += 1;
            }
        }
        debug_assert!(bitpos <= level.bytes() * 8);
        Some(CompressedZBlock { level, data })
    };
    // 64 deltas at 7 bits = 448 bits; header 64 bits; total 512 bits = 64B.
    if let Some(b) = try_pack(QUARTER_DELTA_BITS, ZCompression::Quarter) {
        return b;
    }
    // 64 deltas at 15 bits = 960 bits; header 64; total 1024 bits = 128B.
    if let Some(b) = try_pack(HALF_DELTA_BITS, ZCompression::Half) {
        return b;
    }
    let mut data = Vec::with_capacity(256);
    for w in words {
        data.extend_from_slice(&w.to_le_bytes());
    }
    CompressedZBlock { level: ZCompression::Uncompressed, data }
}

/// Decompresses a block produced by [`compress_z_block`].
pub fn decompress_z_block(block: &CompressedZBlock) -> [u32; ZBLOCK_WORDS] {
    let mut out = [0u32; ZBLOCK_WORDS];
    match block.level {
        ZCompression::Uncompressed => {
            for (i, w) in out.iter_mut().enumerate() {
                *w = u32::from_le_bytes(block.data[i * 4..i * 4 + 4].try_into().unwrap());
            }
        }
        level => {
            let delta_bits = if level == ZCompression::Quarter {
                QUARTER_DELTA_BITS
            } else {
                HALF_DELTA_BITS
            };
            let min = u32::from_le_bytes(block.data[..4].try_into().unwrap());
            let mut bitpos = 64usize;
            for w in out.iter_mut() {
                let mut delta = 0u32;
                for b in 0..delta_bits {
                    if (block.data[bitpos / 8] >> (bitpos % 8)) & 1 == 1 {
                        delta |= 1 << b;
                    }
                    bitpos += 1;
                }
                *w = min + delta;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_funcs_cover_all_orders() {
        assert!(!CompareFunc::Never.test(1, 2));
        assert!(CompareFunc::Always.test(1, 2));
        assert!(CompareFunc::Less.test(1, 2) && !CompareFunc::Less.test(2, 2));
        assert!(CompareFunc::LEqual.test(2, 2) && !CompareFunc::LEqual.test(3, 2));
        assert!(CompareFunc::Greater.test(3, 2) && !CompareFunc::Greater.test(2, 2));
        assert!(CompareFunc::GEqual.test(2, 2) && !CompareFunc::GEqual.test(1, 2));
        assert!(CompareFunc::Equal.test(5, 5) && !CompareFunc::Equal.test(5, 6));
        assert!(CompareFunc::NotEqual.test(5, 6) && !CompareFunc::NotEqual.test(5, 5));
    }

    #[test]
    fn stencil_ops_semantics() {
        assert_eq!(StencilOp::Keep.apply(7, 3), 7);
        assert_eq!(StencilOp::Zero.apply(7, 3), 0);
        assert_eq!(StencilOp::Replace.apply(7, 3), 3);
        assert_eq!(StencilOp::Incr.apply(255, 0), 255);
        assert_eq!(StencilOp::IncrWrap.apply(255, 0), 0);
        assert_eq!(StencilOp::Decr.apply(0, 0), 0);
        assert_eq!(StencilOp::DecrWrap.apply(0, 0), 255);
        assert_eq!(StencilOp::Invert.apply(0b1010_0101, 0), 0b0101_1010);
    }

    #[test]
    fn depth_quantization_bounds() {
        assert_eq!(quantize_depth(0.0), 0);
        assert_eq!(quantize_depth(1.0), DEPTH_MAX);
        assert_eq!(quantize_depth(-5.0), 0);
        assert_eq!(quantize_depth(5.0), DEPTH_MAX);
        let mid = quantize_depth(0.5);
        assert!((mid as f64 / DEPTH_MAX as f64 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn pack_unpack_depth_stencil() {
        let w = pack_depth_stencil(0x123456, 0xab);
        assert_eq!(unpack_depth_stencil(w), (0x123456, 0xab));
    }

    #[test]
    fn plain_depth_test_less() {
        let d = DepthState { enabled: true, func: CompareFunc::Less, write: true };
        let s = StencilState::default();
        let stored = pack_depth_stencil(1000, 0);
        let r = z_stencil_test(d, s, 500, stored);
        assert!(r.pass && r.written);
        assert_eq!(unpack_depth_stencil(r.new_word).0, 500);
        let r = z_stencil_test(d, s, 2000, stored);
        assert!(!r.pass && !r.written);
    }

    #[test]
    fn depth_write_disable_keeps_buffer() {
        let d = DepthState { enabled: true, func: CompareFunc::Less, write: false };
        let r = z_stencil_test(d, StencilState::default(), 1, pack_depth_stencil(9, 0));
        assert!(r.pass);
        assert!(!r.written);
        assert_eq!(unpack_depth_stencil(r.new_word).0, 9);
    }

    #[test]
    fn stencil_shadow_volume_pattern() {
        // Depth-fail ("Carmack's reverse"): increment on depth fail, as a
        // Doom3-style workload does.
        let d = DepthState { enabled: true, func: CompareFunc::Less, write: false };
        let s = StencilState {
            enabled: true,
            func: CompareFunc::Always,
            dpfail: StencilOp::Incr,
            ..StencilState::default()
        };
        let stored = pack_depth_stencil(100, 0);
        // Fragment behind geometry: depth fails -> stencil increments.
        let r = z_stencil_test(d, s, 500, stored);
        assert!(!r.pass);
        assert!(r.written);
        assert_eq!(unpack_depth_stencil(r.new_word).1, 1);
        // Fragment in front: depth passes -> stencil kept.
        let r = z_stencil_test(d, s, 50, stored);
        assert!(r.pass);
        assert_eq!(unpack_depth_stencil(r.new_word).1, 0);
    }

    #[test]
    fn stencil_masked_compare_and_write() {
        let d = DepthState::default();
        let s = StencilState {
            enabled: true,
            func: CompareFunc::Equal,
            reference: 0b0000_0101,
            read_mask: 0b0000_1111,
            write_mask: 0b0000_1111,
            dppass: StencilOp::Replace,
            ..StencilState::default()
        };
        // Stored high bits differ but are masked out of the compare.
        let stored = pack_depth_stencil(0, 0b1111_0101);
        let r = z_stencil_test(d, s, 0, stored);
        assert!(r.pass);
        // Replace writes only masked bits: high nibble preserved.
        assert_eq!(unpack_depth_stencil(r.new_word).1, 0b1111_0101);
        let stored = pack_depth_stencil(0, 0b0000_0110);
        let r = z_stencil_test(d, s, 0, stored);
        assert!(!r.pass);
    }

    #[test]
    fn blend_disabled_overwrites() {
        let st = BlendState::default();
        let out = blend(&st, Vec4::new(0.2, 0.4, 0.6, 0.8), Vec4::ONE);
        assert_eq!(out, Vec4::new(0.2, 0.4, 0.6, 0.8));
    }

    #[test]
    fn standard_alpha_blending() {
        let st = BlendState {
            enabled: true,
            src_factor: BlendFactor::SrcAlpha,
            dst_factor: BlendFactor::OneMinusSrcAlpha,
            ..BlendState::default()
        };
        let src = Vec4::new(1.0, 0.0, 0.0, 0.25);
        let dst = Vec4::new(0.0, 1.0, 0.0, 1.0);
        let out = blend(&st, src, dst);
        assert!((out.x - 0.25).abs() < 1e-6);
        assert!((out.y - 0.75).abs() < 1e-6);
    }

    #[test]
    fn additive_blending_saturates() {
        let st = BlendState {
            enabled: true,
            src_factor: BlendFactor::One,
            dst_factor: BlendFactor::One,
            ..BlendState::default()
        };
        let out = blend(&st, Vec4::splat(0.7), Vec4::splat(0.7));
        assert_eq!(out, Vec4::ONE);
    }

    #[test]
    fn min_max_equations() {
        let st = BlendState {
            enabled: true,
            equation: BlendEquation::Min,
            ..BlendState::default()
        };
        assert_eq!(blend(&st, Vec4::splat(0.3), Vec4::splat(0.6)), Vec4::splat(0.3));
        let st = BlendState { equation: BlendEquation::Max, ..st };
        assert_eq!(blend(&st, Vec4::splat(0.3), Vec4::splat(0.6)), Vec4::splat(0.6));
    }

    #[test]
    fn reverse_subtract() {
        let st = BlendState {
            enabled: true,
            src_factor: BlendFactor::One,
            dst_factor: BlendFactor::One,
            equation: BlendEquation::ReverseSubtract,
            ..BlendState::default()
        };
        let out = blend(&st, Vec4::splat(0.2), Vec4::splat(0.5));
        assert!((out.x - 0.3).abs() < 1e-6);
    }

    #[test]
    fn color_mask_preserves_channels() {
        let st = BlendState { color_mask: [true, false, true, false], ..BlendState::default() };
        let out = blend(&st, Vec4::splat(0.9), Vec4::splat(0.1));
        assert_eq!(out, Vec4::new(0.9, 0.1, 0.9, 0.1));
    }

    #[test]
    fn rgba8_round_trip() {
        let c = Vec4::new(0.0, 1.0, 0.5019608, 0.2509804);
        let packed = pack_rgba8(c);
        let back = unpack_rgba8(packed);
        for i in 0..4 {
            assert!((back[i] - c[i]).abs() < 1.0 / 255.0);
        }
    }

    #[test]
    fn z_compression_quarter_on_flat_block() {
        // A cleared or single-plane tile: tiny deltas -> 1:4.
        let mut words = [pack_depth_stencil(500_000, 0); ZBLOCK_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w += (i % 32) as u32;
        }
        let c = compress_z_block(&words);
        assert_eq!(c.level, ZCompression::Quarter);
        assert_eq!(c.data.len(), 64);
        assert_eq!(decompress_z_block(&c), words);
    }

    #[test]
    fn z_compression_half_on_sloped_block() {
        let mut words = [0u32; ZBLOCK_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = 1_000_000 + (i as u32) * 300; // deltas up to ~19k: needs 15 bits
        }
        let c = compress_z_block(&words);
        assert_eq!(c.level, ZCompression::Half);
        assert_eq!(c.data.len(), 128);
        assert_eq!(decompress_z_block(&c), words);
    }

    #[test]
    fn z_compression_falls_back_to_raw() {
        let mut words = [0u32; ZBLOCK_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = (i as u32) * 0x0100_0000; // stencil bits differ wildly
        }
        let c = compress_z_block(&words);
        assert_eq!(c.level, ZCompression::Uncompressed);
        assert_eq!(decompress_z_block(&c), words);
    }

    #[test]
    fn z_compression_boundary_exact_7_bits() {
        let mut words = [0u32; ZBLOCK_WORDS];
        words[63] = 127; // max delta exactly 2^7 - 1
        let c = compress_z_block(&words);
        assert_eq!(c.level, ZCompression::Quarter);
        assert_eq!(decompress_z_block(&c), words);
        words[63] = 128; // one too big for 7 bits
        let c = compress_z_block(&words);
        assert_eq!(c.level, ZCompression::Half);
        assert_eq!(decompress_z_block(&c), words);
    }
}
