//! The clipper emulator: trivial frustum rejection.
//!
//! Per the paper, "our current ATTILA implementation is limited to perform
//! trivial rejection of those triangles that lay completely outside the
//! \[view\] volume. All other triangles, including partially included
//! triangles, flow free to the Rasterizer units" — the 2D homogeneous
//! rasterizer handles them without geometric clipping.

use crate::vector::Vec4;

/// Frustum outcode bits: which clip planes a vertex is outside of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Outcode(pub u8);

impl Outcode {
    /// Outside the `x = -w` plane.
    pub const LEFT: u8 = 1 << 0;
    /// Outside the `x = +w` plane.
    pub const RIGHT: u8 = 1 << 1;
    /// Outside the `y = -w` plane.
    pub const BOTTOM: u8 = 1 << 2;
    /// Outside the `y = +w` plane.
    pub const TOP: u8 = 1 << 3;
    /// Outside the `z = -w` (near) plane.
    pub const NEAR: u8 = 1 << 4;
    /// Outside the `z = +w` (far) plane.
    pub const FAR: u8 = 1 << 5;

    /// Computes the outcode of a clip-space vertex.
    pub fn of(v: Vec4) -> Outcode {
        let mut code = 0;
        if v.x < -v.w {
            code |= Self::LEFT;
        }
        if v.x > v.w {
            code |= Self::RIGHT;
        }
        if v.y < -v.w {
            code |= Self::BOTTOM;
        }
        if v.y > v.w {
            code |= Self::TOP;
        }
        if v.z < -v.w {
            code |= Self::NEAR;
        }
        if v.z > v.w {
            code |= Self::FAR;
        }
        Outcode(code)
    }
}

/// The clipper emulator. Stateless.
#[derive(Debug, Default, Clone)]
pub struct ClipperEmulator;

impl ClipperEmulator {
    /// Creates the emulator.
    pub fn new() -> Self {
        ClipperEmulator
    }

    /// Returns `true` if the triangle is certainly invisible: all three
    /// vertices lie outside the *same* frustum plane (trivial rejection).
    /// Partially visible triangles return `false` and flow to the
    /// rasterizer unclipped.
    pub fn trivially_rejected(&self, v: &[Vec4; 3]) -> bool {
        let c0 = Outcode::of(v[0]).0;
        let c1 = Outcode::of(v[1]).0;
        let c2 = Outcode::of(v[2]).0;
        (c0 & c1 & c2) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inside_vertex_has_zero_outcode() {
        assert_eq!(Outcode::of(Vec4::new(0.0, 0.0, 0.0, 1.0)).0, 0);
        assert_eq!(Outcode::of(Vec4::new(1.0, -1.0, 1.0, 1.0)).0, 0);
    }

    #[test]
    fn outcodes_flag_each_plane() {
        assert_eq!(Outcode::of(Vec4::new(-2.0, 0.0, 0.0, 1.0)).0, Outcode::LEFT);
        assert_eq!(Outcode::of(Vec4::new(2.0, 0.0, 0.0, 1.0)).0, Outcode::RIGHT);
        assert_eq!(Outcode::of(Vec4::new(0.0, -2.0, 0.0, 1.0)).0, Outcode::BOTTOM);
        assert_eq!(Outcode::of(Vec4::new(0.0, 2.0, 0.0, 1.0)).0, Outcode::TOP);
        assert_eq!(Outcode::of(Vec4::new(0.0, 0.0, -2.0, 1.0)).0, Outcode::NEAR);
        assert_eq!(Outcode::of(Vec4::new(0.0, 0.0, 2.0, 1.0)).0, Outcode::FAR);
    }

    #[test]
    fn fully_visible_triangle_passes() {
        let clip = ClipperEmulator::new();
        assert!(!clip.trivially_rejected(&[
            Vec4::new(-0.5, -0.5, 0.0, 1.0),
            Vec4::new(0.5, -0.5, 0.0, 1.0),
            Vec4::new(0.0, 0.5, 0.0, 1.0),
        ]));
    }

    #[test]
    fn triangle_outside_one_plane_is_rejected() {
        let clip = ClipperEmulator::new();
        assert!(clip.trivially_rejected(&[
            Vec4::new(2.0, 0.0, 0.0, 1.0),
            Vec4::new(3.0, 0.0, 0.0, 1.0),
            Vec4::new(2.5, 1.0, 0.0, 1.0),
        ]));
    }

    #[test]
    fn straddling_triangle_is_not_rejected() {
        // Vertices outside *different* planes: not trivially rejectable
        // (even though this one is actually invisible, conservatism is
        // fine — the rasterizer generates nothing for it).
        let clip = ClipperEmulator::new();
        assert!(!clip.trivially_rejected(&[
            Vec4::new(-5.0, 0.0, 0.0, 1.0),
            Vec4::new(5.0, 10.0, 0.0, 1.0),
            Vec4::new(0.0, -5.0, 0.0, 1.0),
        ]));
    }

    #[test]
    fn partially_visible_triangle_flows_through() {
        let clip = ClipperEmulator::new();
        assert!(!clip.trivially_rejected(&[
            Vec4::new(0.0, 0.0, 0.0, 1.0),
            Vec4::new(5.0, 0.0, 0.0, 1.0),
            Vec4::new(0.0, 5.0, 0.0, 1.0),
        ]));
    }

    #[test]
    fn behind_eye_triangle_rejected_by_near_plane() {
        // w < 0 and z < -w for all vertices -> NEAR bit set everywhere.
        let clip = ClipperEmulator::new();
        assert!(clip.trivially_rejected(&[
            Vec4::new(0.0, 0.0, -2.0, 1.0),
            Vec4::new(1.0, 0.0, -3.0, 1.0),
            Vec4::new(0.0, 1.0, -2.5, 1.0),
        ]));
    }
}
