//! Four-component float vectors — the GPU's native data type.
//!
//! ATTILA's whole datapath works on 4-component 32-bit floating-point
//! vectors: vertex attributes, fragment attributes, shader registers and
//! filtered texels are all [`Vec4`] values.

use std::fmt;
use std::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

/// A 4-component single-precision vector `(x, y, z, w)`.
///
/// # Examples
///
/// ```
/// use attila_emu::Vec4;
/// let a = Vec4::new(1.0, 2.0, 3.0, 4.0);
/// let b = Vec4::splat(2.0);
/// assert_eq!(a * b, Vec4::new(2.0, 4.0, 6.0, 8.0));
/// assert_eq!(a.dot4(b), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// First component.
    pub x: f32,
    /// Second component.
    pub y: f32,
    /// Third component.
    pub z: f32,
    /// Fourth component.
    pub w: f32,
}

impl Vec4 {
    /// The zero vector `(0, 0, 0, 0)`.
    pub const ZERO: Vec4 = Vec4 { x: 0.0, y: 0.0, z: 0.0, w: 0.0 };
    /// The one vector `(1, 1, 1, 1)`.
    pub const ONE: Vec4 = Vec4 { x: 1.0, y: 1.0, z: 1.0, w: 1.0 };
    /// A point at the origin `(0, 0, 0, 1)`.
    pub const ORIGIN: Vec4 = Vec4 { x: 0.0, y: 0.0, z: 0.0, w: 1.0 };

    /// Builds a vector from its four components.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Vec4 { x, y, z, w }
    }

    /// Builds a vector with all components equal to `v`.
    pub const fn splat(v: f32) -> Self {
        Vec4 { x: v, y: v, z: v, w: v }
    }

    /// Builds a position vector `(x, y, z, 1)`.
    pub const fn point(x: f32, y: f32, z: f32) -> Self {
        Vec4 { x, y, z, w: 1.0 }
    }

    /// 3-component dot product (ignores `w`).
    pub fn dot3(self, rhs: Vec4) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// 4-component dot product.
    pub fn dot4(self, rhs: Vec4) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z + self.w * rhs.w
    }

    /// Homogeneous dot product: `xyz·xyz + w` (ARB `DPH`).
    pub fn dph(self, rhs: Vec4) -> f32 {
        self.dot3(rhs) + rhs.w
    }

    /// 3-component cross product; `w` of the result is 0.
    pub fn cross3(self, rhs: Vec4) -> Vec4 {
        Vec4::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
            0.0,
        )
    }

    /// Euclidean length of the `xyz` part.
    pub fn length3(self) -> f32 {
        self.dot3(self).sqrt()
    }

    /// Normalizes the `xyz` part (leaves `w` untouched). Returns the input
    /// unchanged if the length is zero.
    pub fn normalize3(self) -> Vec4 {
        let len = self.length3();
        if len == 0.0 {
            self
        } else {
            Vec4::new(self.x / len, self.y / len, self.z / len, self.w)
        }
    }

    /// Component-wise minimum.
    pub fn min(self, rhs: Vec4) -> Vec4 {
        self.zip(rhs, f32::min)
    }

    /// Component-wise maximum.
    pub fn max(self, rhs: Vec4) -> Vec4 {
        self.zip(rhs, f32::max)
    }

    /// Clamps every component to `[0, 1]` (shader `_SAT` modifier,
    /// framebuffer colour clamping).
    pub fn saturate(self) -> Vec4 {
        self.map(|v| v.clamp(0.0, 1.0))
    }

    /// Component-wise absolute value.
    pub fn abs(self) -> Vec4 {
        self.map(f32::abs)
    }

    /// Component-wise floor.
    pub fn floor(self) -> Vec4 {
        self.map(f32::floor)
    }

    /// Component-wise fractional part (`x - floor(x)`, always in `[0, 1)`).
    pub fn fract(self) -> Vec4 {
        self.map(|v| v - v.floor())
    }

    /// Linear interpolation `self + t * (rhs - self)` per component.
    pub fn lerp(self, rhs: Vec4, t: f32) -> Vec4 {
        self + (rhs - self) * t
    }

    /// Applies `f` to every component.
    pub fn map(self, f: impl Fn(f32) -> f32) -> Vec4 {
        Vec4::new(f(self.x), f(self.y), f(self.z), f(self.w))
    }

    /// Applies `f` component-pair-wise.
    pub fn zip(self, rhs: Vec4, f: impl Fn(f32, f32) -> f32) -> Vec4 {
        Vec4::new(f(self.x, rhs.x), f(self.y, rhs.y), f(self.z, rhs.z), f(self.w, rhs.w))
    }

    /// The components as an array `[x, y, z, w]`.
    pub fn to_array(self) -> [f32; 4] {
        [self.x, self.y, self.z, self.w]
    }

    /// Whether all components are finite (no NaN/∞ escaped a computation).
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite() && self.w.is_finite()
    }
}

impl From<[f32; 4]> for Vec4 {
    fn from(a: [f32; 4]) -> Self {
        Vec4::new(a[0], a[1], a[2], a[3])
    }
}

impl From<Vec4> for [f32; 4] {
    fn from(v: Vec4) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec4 {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            3 => &self.w,
            _ => panic!("Vec4 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec4 {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            3 => &mut self.w,
            _ => panic!("Vec4 index {i} out of range"),
        }
    }
}

impl Add for Vec4 {
    type Output = Vec4;
    fn add(self, rhs: Vec4) -> Vec4 {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for Vec4 {
    type Output = Vec4;
    fn sub(self, rhs: Vec4) -> Vec4 {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for Vec4 {
    type Output = Vec4;
    fn mul(self, rhs: Vec4) -> Vec4 {
        self.zip(rhs, |a, b| a * b)
    }
}

impl Mul<f32> for Vec4 {
    type Output = Vec4;
    fn mul(self, rhs: f32) -> Vec4 {
        self.map(|a| a * rhs)
    }
}

impl Div<f32> for Vec4 {
    type Output = Vec4;
    fn div(self, rhs: f32) -> Vec4 {
        self.map(|a| a / rhs)
    }
}

impl Neg for Vec4 {
    type Output = Vec4;
    fn neg(self) -> Vec4 {
        self.map(|a| -a)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

/// A column-major 4×4 matrix for the fixed-function transform path.
///
/// # Examples
///
/// ```
/// use attila_emu::{Mat4, Vec4};
/// let m = Mat4::translation(1.0, 2.0, 3.0);
/// assert_eq!(m.transform(Vec4::ORIGIN), Vec4::point(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Columns of the matrix.
    pub cols: [Vec4; 4],
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from four columns.
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Mat4 { cols: [c0, c1, c2, c3] }
    }

    /// A translation matrix.
    pub fn translation(x: f32, y: f32, z: f32) -> Self {
        let mut m = Mat4::IDENTITY;
        m.cols[3] = Vec4::new(x, y, z, 1.0);
        m
    }

    /// A (non-uniform) scaling matrix.
    pub fn scale(x: f32, y: f32, z: f32) -> Self {
        Mat4::from_cols(
            Vec4::new(x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians around the Y axis.
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians around the X axis.
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// A right-handed perspective projection (OpenGL `gluPerspective`
    /// semantics; depth maps to clip `[-w, w]`).
    pub fn perspective(fovy_radians: f32, aspect: f32, near: f32, far: f32) -> Self {
        let f = 1.0 / (fovy_radians / 2.0).tan();
        Mat4::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, (far + near) / (near - far), -1.0),
            Vec4::new(0.0, 0.0, 2.0 * far * near / (near - far), 0.0),
        )
    }

    /// An orthographic projection (OpenGL `glOrtho` semantics).
    pub fn ortho(left: f32, right: f32, bottom: f32, top: f32, near: f32, far: f32) -> Self {
        Mat4::from_cols(
            Vec4::new(2.0 / (right - left), 0.0, 0.0, 0.0),
            Vec4::new(0.0, 2.0 / (top - bottom), 0.0, 0.0),
            Vec4::new(0.0, 0.0, -2.0 / (far - near), 0.0),
            Vec4::new(
                -(right + left) / (right - left),
                -(top + bottom) / (top - bottom),
                -(far + near) / (far - near),
                1.0,
            ),
        )
    }

    /// A look-at view matrix (OpenGL `gluLookAt` semantics).
    pub fn look_at(eye: Vec4, center: Vec4, up: Vec4) -> Self {
        let f = (center - eye).normalize3();
        let s = f.cross3(up).normalize3();
        let u = s.cross3(f);
        Mat4::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot3(eye), -u.dot3(eye), f.dot3(eye), 1.0),
        )
    }

    /// Transforms a vector: `M * v`.
    pub fn transform(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Matrix product `self * rhs`.
    pub fn mul_mat(&self, rhs: &Mat4) -> Mat4 {
        Mat4 {
            cols: [
                self.transform(rhs.cols[0]),
                self.transform(rhs.cols[1]),
                self.transform(rhs.cols[2]),
                self.transform(rhs.cols[3]),
            ],
        }
    }

    /// The matrix row `i` as a vector (used to load shader constants).
    pub fn row(&self, i: usize) -> Vec4 {
        Vec4::new(self.cols[0][i], self.cols[1][i], self.cols[2][i], self.cols[3][i])
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::IDENTITY
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        self.mul_mat(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Vec4, b: Vec4) {
        for i in 0..4 {
            assert!((a[i] - b[i]).abs() < 1e-5, "{a} != {b} at component {i}");
        }
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec4::new(1.0, 2.0, 3.0, 4.0);
        let b = Vec4::new(4.0, 3.0, 2.0, 1.0);
        assert_eq!(a + b, Vec4::splat(5.0));
        assert_eq!(a - b, Vec4::new(-3.0, -1.0, 1.0, 3.0));
        assert_eq!(a * 2.0, Vec4::new(2.0, 4.0, 6.0, 8.0));
        assert_eq!(-a, Vec4::new(-1.0, -2.0, -3.0, -4.0));
        assert_eq!(a / 2.0, Vec4::new(0.5, 1.0, 1.5, 2.0));
    }

    #[test]
    fn dot_products() {
        let a = Vec4::new(1.0, 2.0, 3.0, 4.0);
        let b = Vec4::new(5.0, 6.0, 7.0, 8.0);
        assert_eq!(a.dot3(b), 38.0);
        assert_eq!(a.dot4(b), 70.0);
        assert_eq!(a.dph(b), 46.0);
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let x = Vec4::new(1.0, 0.0, 0.0, 0.0);
        let y = Vec4::new(0.0, 1.0, 0.0, 0.0);
        assert_eq!(x.cross3(y), Vec4::new(0.0, 0.0, 1.0, 0.0));
    }

    #[test]
    fn saturate_clamps() {
        let v = Vec4::new(-1.0, 0.5, 2.0, 1.0);
        assert_eq!(v.saturate(), Vec4::new(0.0, 0.5, 1.0, 1.0));
    }

    #[test]
    fn normalize_handles_zero() {
        assert_eq!(Vec4::ZERO.normalize3(), Vec4::ZERO);
        let n = Vec4::new(3.0, 0.0, 4.0, 9.0).normalize3();
        assert!((n.length3() - 1.0).abs() < 1e-6);
        assert_eq!(n.w, 9.0);
    }

    #[test]
    fn fract_is_always_positive() {
        let v = Vec4::new(-1.25, 1.25, -0.5, 2.0).fract();
        assert_close(v, Vec4::new(0.75, 0.25, 0.5, 0.0));
    }

    #[test]
    fn indexing_matches_fields() {
        let mut v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[3], 4.0);
        v[2] = 9.0;
        assert_eq!(v.z, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec4::ZERO[4];
    }

    #[test]
    fn matrix_identity_transform() {
        let v = Vec4::new(1.0, 2.0, 3.0, 1.0);
        assert_eq!(Mat4::IDENTITY.transform(v), v);
    }

    #[test]
    fn matrix_translation_and_scale_compose() {
        let m = Mat4::translation(10.0, 0.0, 0.0) * Mat4::scale(2.0, 2.0, 2.0);
        assert_close(m.transform(Vec4::point(1.0, 1.0, 1.0)), Vec4::point(12.0, 2.0, 2.0));
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let m = Mat4::rotation_y(std::f32::consts::FRAC_PI_2);
        assert_close(m.transform(Vec4::point(1.0, 0.0, 0.0)), Vec4::point(0.0, 0.0, -1.0));
    }

    #[test]
    fn perspective_maps_near_plane() {
        let m = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        let v = m.transform(Vec4::point(0.0, 0.0, -1.0));
        // On the near plane, z/w == -1.
        assert!((v.z / v.w + 1.0).abs() < 1e-5);
    }

    #[test]
    fn look_at_centers_target() {
        let m = Mat4::look_at(Vec4::point(0.0, 0.0, 5.0), Vec4::ORIGIN, Vec4::new(0.0, 1.0, 0.0, 0.0));
        let v = m.transform(Vec4::ORIGIN);
        assert_close(v, Vec4::point(0.0, 0.0, -5.0));
    }

    #[test]
    fn row_extraction() {
        let m = Mat4::translation(7.0, 8.0, 9.0);
        assert_eq!(m.row(0), Vec4::new(1.0, 0.0, 0.0, 7.0));
        assert_eq!(m.row(3), Vec4::new(0.0, 0.0, 0.0, 1.0));
    }
}
