//! The ATTILA shader instruction set.
//!
//! The unified shader ISA is modelled on the `ARB_vertex_program` /
//! `ARB_fragment_program` OpenGL extensions, exactly as in the paper
//! (§2.3): the shader works on 4-component 32-bit floating-point registers
//! and implements SIMD and scalar instructions; the fragment/unified target
//! adds texture instructions for accessing memory and a `KIL` instruction
//! for culling fragments.
//!
//! The ARB model defines four register banks: **input** attributes (read
//! only), **output** attributes (write only), **temporary** registers
//! (read/write) and **constants** (read only, called *parameters* here).

use std::fmt;

/// Shader target: which pipeline stage a program runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShaderTarget {
    /// Vertex program (`!!ARBvp1.0`-style).
    Vertex,
    /// Fragment program (`!!ARBfp1.0`-style); may use `TEX*` and `KIL`.
    Fragment,
}

impl fmt::Display for ShaderTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShaderTarget::Vertex => write!(f, "vertex"),
            ShaderTarget::Fragment => write!(f, "fragment"),
        }
    }
}

/// Architectural limits of the shader model.
pub mod limits {
    /// Input attribute registers per thread.
    pub const INPUTS: usize = 16;
    /// Output attribute registers per thread.
    pub const OUTPUTS: usize = 16;
    /// Temporary registers addressable by a program (the ARB ISA defines up
    /// to 32; real programs use 2–8, which bounds thread availability).
    pub const TEMPS: usize = 32;
    /// Constant (parameter) registers per program.
    pub const PARAMS: usize = 256;
    /// Texture samplers addressable by a fragment program.
    pub const SAMPLERS: usize = 16;
    /// Maximum instructions per program (the paper notes a "relatively
    /// small shader instruction memory" preloaded per batch).
    pub const MAX_INSTRUCTIONS: usize = 512;
}

/// Register banks of the ARB programming model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bank {
    /// Read-only per-thread input attributes (`v[n]` / fragment inputs).
    Input,
    /// Write-only per-thread outputs (`result.*`).
    Output,
    /// Read/write temporaries (`r0..r31`).
    Temp,
    /// Read-only constants (`c[n]`, program parameters).
    Param,
}

impl fmt::Display for Bank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bank::Input => write!(f, "i"),
            Bank::Output => write!(f, "o"),
            Bank::Temp => write!(f, "r"),
            Bank::Param => write!(f, "c"),
        }
    }
}

/// A register reference: a bank plus an index within the bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg {
    /// Which bank the register lives in.
    pub bank: Bank,
    /// Index within the bank.
    pub index: u8,
}

impl Reg {
    /// Creates a register reference, validating the index against the
    /// bank's architectural limit.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `bank`.
    pub fn new(bank: Bank, index: usize) -> Self {
        let limit = match bank {
            Bank::Input => limits::INPUTS,
            Bank::Output => limits::OUTPUTS,
            Bank::Temp => limits::TEMPS,
            Bank::Param => limits::PARAMS,
        };
        assert!(index < limit, "register index {index} out of range for bank {bank:?}");
        Reg { bank, index: index as u8 }
    }

    /// Input register `i<n>`.
    pub fn input(n: usize) -> Self {
        Reg::new(Bank::Input, n)
    }

    /// Output register `o<n>`.
    pub fn output(n: usize) -> Self {
        Reg::new(Bank::Output, n)
    }

    /// Temporary register `r<n>`.
    pub fn temp(n: usize) -> Self {
        Reg::new(Bank::Temp, n)
    }

    /// Constant register `c<n>`.
    pub fn param(n: usize) -> Self {
        Reg::new(Bank::Param, n)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.bank, self.index)
    }
}

/// One of the four vector components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comp {
    /// First component.
    X,
    /// Second component.
    Y,
    /// Third component.
    Z,
    /// Fourth component.
    W,
}

impl Comp {
    /// The component's index (0–3).
    pub fn index(self) -> usize {
        match self {
            Comp::X => 0,
            Comp::Y => 1,
            Comp::Z => 2,
            Comp::W => 3,
        }
    }

    /// The component selecting `index` (0–3).
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    pub fn from_index(index: usize) -> Self {
        match index {
            0 => Comp::X,
            1 => Comp::Y,
            2 => Comp::Z,
            3 => Comp::W,
            _ => panic!("component index {index} out of range"),
        }
    }

    /// The single-letter name (`x`, `y`, `z`, `w`).
    pub fn letter(self) -> char {
        match self {
            Comp::X => 'x',
            Comp::Y => 'y',
            Comp::Z => 'z',
            Comp::W => 'w',
        }
    }

    /// Parses a single-letter component name.
    pub fn from_letter(c: char) -> Option<Self> {
        match c {
            'x' => Some(Comp::X),
            'y' => Some(Comp::Y),
            'z' => Some(Comp::Z),
            'w' => Some(Comp::W),
            _ => None,
        }
    }
}

/// A component swizzle applied to a source operand (e.g. `.xyzw`, `.wzyx`,
/// `.xxxx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Swizzle(pub [Comp; 4]);

impl Swizzle {
    /// The identity swizzle `.xyzw`.
    pub const IDENTITY: Swizzle = Swizzle([Comp::X, Comp::Y, Comp::Z, Comp::W]);

    /// Broadcast of a single component (`.xxxx` etc.), as used by scalar
    /// instructions.
    pub fn broadcast(c: Comp) -> Self {
        Swizzle([c, c, c, c])
    }

    /// Whether this is the identity swizzle.
    pub fn is_identity(self) -> bool {
        self == Swizzle::IDENTITY
    }

    /// Parses suffixes like `xyzw`, `x` (scalar select) or 4-letter
    /// patterns. A single letter broadcasts per ARB semantics.
    pub fn parse(s: &str) -> Option<Self> {
        let chars: Vec<Comp> = s.chars().map(Comp::from_letter).collect::<Option<_>>()?;
        match chars.len() {
            1 => Some(Swizzle::broadcast(chars[0])),
            4 => Some(Swizzle([chars[0], chars[1], chars[2], chars[3]])),
            _ => None,
        }
    }
}

impl Default for Swizzle {
    fn default() -> Self {
        Swizzle::IDENTITY
    }
}

impl fmt::Display for Swizzle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in self.0 {
            write!(f, "{}", c.letter())?;
        }
        Ok(())
    }
}

/// A destination write mask (e.g. `.xyz`). Components not in the mask keep
/// their previous value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteMask(pub [bool; 4]);

impl WriteMask {
    /// Write all four components.
    pub const ALL: WriteMask = WriteMask([true; 4]);

    /// Parses masks like `xyzw`, `xz`, `w` (letters must appear in
    /// `x y z w` order, per ARB grammar).
    pub fn parse(s: &str) -> Option<Self> {
        let mut mask = [false; 4];
        let mut last = -1i32;
        for ch in s.chars() {
            let c = Comp::from_letter(ch)?;
            let i = c.index() as i32;
            if i <= last {
                return None;
            }
            last = i;
            mask[c.index()] = true;
        }
        Some(WriteMask(mask))
    }

    /// Whether the mask writes component `i`.
    pub fn writes(self, i: usize) -> bool {
        self.0[i]
    }

    /// Whether all components are written.
    pub fn is_all(self) -> bool {
        self == WriteMask::ALL
    }
}

impl Default for WriteMask {
    fn default() -> Self {
        WriteMask::ALL
    }
}

impl fmt::Display for WriteMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, on) in self.0.iter().enumerate() {
            if *on {
                write!(f, "{}", Comp::from_index(i).letter())?;
            }
        }
        Ok(())
    }
}

/// A source operand: register + swizzle + optional negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Src {
    /// The register read.
    pub reg: Reg,
    /// Component swizzle applied after the read.
    pub swizzle: Swizzle,
    /// Whether the (swizzled) value is negated.
    pub negate: bool,
}

impl Src {
    /// A plain, un-swizzled, un-negated source.
    pub fn reg(reg: Reg) -> Self {
        Src { reg, swizzle: Swizzle::IDENTITY, negate: false }
    }

    /// Applies a swizzle.
    pub fn swizzled(mut self, sw: Swizzle) -> Self {
        self.swizzle = sw;
        self
    }

    /// Negates the operand.
    pub fn negated(mut self) -> Self {
        self.negate = true;
        self
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "-")?;
        }
        write!(f, "{}", self.reg)?;
        if !self.swizzle.is_identity() {
            write!(f, ".{}", self.swizzle)?;
        }
        Ok(())
    }
}

/// A destination operand: register + write mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dst {
    /// The register written.
    pub reg: Reg,
    /// Which components are written.
    pub mask: WriteMask,
}

impl Dst {
    /// A full-mask destination.
    pub fn reg(reg: Reg) -> Self {
        Dst { reg, mask: WriteMask::ALL }
    }

    /// Restricts the write mask.
    pub fn masked(mut self, mask: WriteMask) -> Self {
        self.mask = mask;
        self
    }
}

impl fmt::Display for Dst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reg)?;
        if !self.mask.is_all() {
            write!(f, ".{}", self.mask)?;
        }
        Ok(())
    }
}

/// Shader opcodes (the ARB vp/fp 1.0 instruction set, minus the rarely
/// used `SWZ`/`SCS`/`DST`/`LIT`, plus nothing — no branching until the
/// Shader Model 3 upgrade the paper lists as future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Copy.
    Mov,
    /// Add.
    Add,
    /// Subtract.
    Sub,
    /// Multiply.
    Mul,
    /// Multiply-add: `dst = s0 * s1 + s2`.
    Mad,
    /// 3-component dot product (broadcast).
    Dp3,
    /// 4-component dot product (broadcast).
    Dp4,
    /// Homogeneous dot product (broadcast).
    Dph,
    /// Component minimum.
    Min,
    /// Component maximum.
    Max,
    /// Set-on-less-than: `dst = (s0 < s1) ? 1 : 0` per component.
    Slt,
    /// Set-on-greater-equal.
    Sge,
    /// Scalar reciprocal (broadcast).
    Rcp,
    /// Scalar reciprocal square root (broadcast).
    Rsq,
    /// Scalar `2^x` (broadcast).
    Ex2,
    /// Scalar `log2 x` (broadcast).
    Lg2,
    /// Scalar power `s0 ^ s1` (broadcast).
    Pow,
    /// Fractional part per component.
    Frc,
    /// Floor per component.
    Flr,
    /// Absolute value per component.
    Abs,
    /// Conditional select: `dst = (s0 < 0) ? s1 : s2` per component.
    Cmp,
    /// Linear interpolation: `dst = s0 * s1 + (1 - s0) * s2`.
    Lrp,
    /// Cross product (xyz).
    Xpd,
    /// Scalar sine (broadcast; fragment-profile trig).
    Sin,
    /// Scalar cosine (broadcast).
    Cos,
    /// Texture sample: `dst = sample(sampler, s0.xy[z])`.
    Tex,
    /// Texture sample with LOD bias in `s0.w`.
    Txb,
    /// Projective texture sample (`s0.xyz / s0.w`).
    Txp,
    /// Kill the fragment if any component of `s0` is negative.
    Kil,
    /// End of program.
    End,
}

impl Opcode {
    /// Number of opcodes — the size of dense per-opcode lookup tables.
    pub const COUNT: usize = Opcode::ALL.len();

    /// Every opcode, in declaration order (`op as usize` indexes it).
    pub const ALL: [Opcode; 30] = [
        Opcode::Mov, Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Mad,
        Opcode::Dp3, Opcode::Dp4, Opcode::Dph, Opcode::Min, Opcode::Max,
        Opcode::Slt, Opcode::Sge, Opcode::Rcp, Opcode::Rsq, Opcode::Ex2,
        Opcode::Lg2, Opcode::Pow, Opcode::Frc, Opcode::Flr, Opcode::Abs,
        Opcode::Cmp, Opcode::Lrp, Opcode::Xpd, Opcode::Sin, Opcode::Cos,
        Opcode::Tex, Opcode::Txb, Opcode::Txp, Opcode::Kil, Opcode::End,
    ];

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Mov => "MOV",
            Opcode::Add => "ADD",
            Opcode::Sub => "SUB",
            Opcode::Mul => "MUL",
            Opcode::Mad => "MAD",
            Opcode::Dp3 => "DP3",
            Opcode::Dp4 => "DP4",
            Opcode::Dph => "DPH",
            Opcode::Min => "MIN",
            Opcode::Max => "MAX",
            Opcode::Slt => "SLT",
            Opcode::Sge => "SGE",
            Opcode::Rcp => "RCP",
            Opcode::Rsq => "RSQ",
            Opcode::Ex2 => "EX2",
            Opcode::Lg2 => "LG2",
            Opcode::Pow => "POW",
            Opcode::Frc => "FRC",
            Opcode::Flr => "FLR",
            Opcode::Abs => "ABS",
            Opcode::Cmp => "CMP",
            Opcode::Lrp => "LRP",
            Opcode::Xpd => "XPD",
            Opcode::Sin => "SIN",
            Opcode::Cos => "COS",
            Opcode::Tex => "TEX",
            Opcode::Txb => "TXB",
            Opcode::Txp => "TXP",
            Opcode::Kil => "KIL",
            Opcode::End => "END",
        }
    }

    /// Parses a mnemonic (optionally with the `_SAT` suffix stripped by the
    /// assembler).
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "MOV" => Opcode::Mov,
            "ADD" => Opcode::Add,
            "SUB" => Opcode::Sub,
            "MUL" => Opcode::Mul,
            "MAD" => Opcode::Mad,
            "DP3" => Opcode::Dp3,
            "DP4" => Opcode::Dp4,
            "DPH" => Opcode::Dph,
            "MIN" => Opcode::Min,
            "MAX" => Opcode::Max,
            "SLT" => Opcode::Slt,
            "SGE" => Opcode::Sge,
            "RCP" => Opcode::Rcp,
            "RSQ" => Opcode::Rsq,
            "EX2" => Opcode::Ex2,
            "LG2" => Opcode::Lg2,
            "POW" => Opcode::Pow,
            "FRC" => Opcode::Frc,
            "FLR" => Opcode::Flr,
            "ABS" => Opcode::Abs,
            "CMP" => Opcode::Cmp,
            "LRP" => Opcode::Lrp,
            "XPD" => Opcode::Xpd,
            "SIN" => Opcode::Sin,
            "COS" => Opcode::Cos,
            "TEX" => Opcode::Tex,
            "TXB" => Opcode::Txb,
            "TXP" => Opcode::Txp,
            "KIL" => Opcode::Kil,
            "END" => Opcode::End,
            _ => return None,
        })
    }

    /// Number of source operands the opcode takes.
    pub fn num_srcs(self) -> usize {
        match self {
            Opcode::End => 0,
            Opcode::Mov
            | Opcode::Rcp
            | Opcode::Rsq
            | Opcode::Ex2
            | Opcode::Lg2
            | Opcode::Frc
            | Opcode::Flr
            | Opcode::Abs
            | Opcode::Sin
            | Opcode::Cos
            | Opcode::Tex
            | Opcode::Txb
            | Opcode::Txp
            | Opcode::Kil => 1,
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::Dp3
            | Opcode::Dp4
            | Opcode::Dph
            | Opcode::Min
            | Opcode::Max
            | Opcode::Slt
            | Opcode::Sge
            | Opcode::Pow
            | Opcode::Xpd => 2,
            Opcode::Mad | Opcode::Cmp | Opcode::Lrp => 3,
        }
    }

    /// Whether the opcode writes a destination register.
    pub fn has_dst(self) -> bool {
        !matches!(self, Opcode::Kil | Opcode::End)
    }

    /// Whether the opcode reads texture memory (blocks the thread in the
    /// timing model until the Texture Unit answers).
    pub fn is_texture(self) -> bool {
        matches!(self, Opcode::Tex | Opcode::Txb | Opcode::Txp)
    }

    /// Whether the opcode is restricted to the fragment/unified profile.
    pub fn fragment_only(self) -> bool {
        self.is_texture() || matches!(self, Opcode::Kil | Opcode::Sin | Opcode::Cos)
    }

    /// Default execution latency in cycles for the timing model. The
    /// paper's shader pipeline has "an instruction dependent number of
    /// execution stages (configurable, currently ranging from 1 to 9
    /// cycles)".
    pub fn default_latency(self) -> u64 {
        match self {
            Opcode::Mov | Opcode::Abs | Opcode::Frc | Opcode::Flr | Opcode::End => 1,
            Opcode::Add
            | Opcode::Sub
            | Opcode::Min
            | Opcode::Max
            | Opcode::Slt
            | Opcode::Sge
            | Opcode::Cmp
            | Opcode::Kil => 2,
            Opcode::Mul => 3,
            Opcode::Mad | Opcode::Lrp | Opcode::Xpd => 4,
            Opcode::Dp3 | Opcode::Dp4 | Opcode::Dph => 4,
            Opcode::Rcp | Opcode::Rsq => 6,
            Opcode::Ex2 | Opcode::Lg2 | Opcode::Sin | Opcode::Cos => 8,
            Opcode::Pow => 9,
            // Texture latency is dominated by the memory system, not the
            // ALU; the issue cost is 1.
            Opcode::Tex | Opcode::Txb | Opcode::Txp => 1,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// Texture target named by a `TEX`-family instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TexTarget {
    /// One-dimensional texture.
    Tex1D,
    /// Two-dimensional texture (the default).
    #[default]
    Tex2D,
    /// Three-dimensional texture.
    Tex3D,
    /// Cube map.
    Cube,
}

impl TexTarget {
    /// The assembly keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            TexTarget::Tex1D => "1D",
            TexTarget::Tex2D => "2D",
            TexTarget::Tex3D => "3D",
            TexTarget::Cube => "CUBE",
        }
    }

    /// Parses the assembly keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        match s {
            "1D" => Some(TexTarget::Tex1D),
            "2D" => Some(TexTarget::Tex2D),
            "3D" => Some(TexTarget::Tex3D),
            "CUBE" => Some(TexTarget::Cube),
            _ => None,
        }
    }
}

/// One decoded shader instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// The operation.
    pub op: Opcode,
    /// Destination operand, for opcodes with [`Opcode::has_dst`].
    pub dst: Option<Dst>,
    /// Source operands (`num_srcs` of them are `Some`).
    pub srcs: [Option<Src>; 3],
    /// Texture sampler index for `TEX`-family opcodes.
    pub sampler: u8,
    /// Texture target for `TEX`-family opcodes.
    pub tex_target: TexTarget,
    /// Whether the result is clamped to `[0,1]` (`_SAT` suffix).
    pub saturate: bool,
}

impl Instruction {
    /// Builds an instruction with no operands (e.g. `END`).
    pub fn nullary(op: Opcode) -> Self {
        Instruction {
            op,
            dst: None,
            srcs: [None; 3],
            sampler: 0,
            tex_target: TexTarget::default(),
            saturate: false,
        }
    }

    /// Builds a standard ALU instruction.
    pub fn alu(op: Opcode, dst: Dst, srcs: &[Src]) -> Self {
        assert_eq!(srcs.len(), op.num_srcs(), "wrong operand count for {op}");
        assert!(op.has_dst(), "{op} does not write a destination");
        let mut s = [None; 3];
        for (i, src) in srcs.iter().enumerate() {
            s[i] = Some(*src);
        }
        Instruction {
            op,
            dst: Some(dst),
            srcs: s,
            sampler: 0,
            tex_target: TexTarget::default(),
            saturate: false,
        }
    }

    /// Builds a texture instruction.
    pub fn tex(op: Opcode, dst: Dst, coord: Src, sampler: u8, target: TexTarget) -> Self {
        assert!(op.is_texture(), "{op} is not a texture opcode");
        Instruction {
            op,
            dst: Some(dst),
            srcs: [Some(coord), None, None],
            sampler,
            tex_target: target,
            saturate: false,
        }
    }

    /// Builds a `KIL` instruction.
    pub fn kil(src: Src) -> Self {
        Instruction {
            op: Opcode::Kil,
            dst: None,
            srcs: [Some(src), None, None],
            sampler: 0,
            tex_target: TexTarget::default(),
            saturate: false,
        }
    }

    /// Enables result saturation (`_SAT`).
    pub fn saturated(mut self) -> Self {
        self.saturate = true;
        self
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op.mnemonic())?;
        if self.saturate {
            write!(f, "_SAT")?;
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if let Some(dst) = &self.dst {
            sep(f)?;
            write!(f, "{dst}")?;
        }
        for src in self.srcs.iter().flatten() {
            sep(f)?;
            write!(f, "{src}")?;
        }
        if self.op.is_texture() {
            sep(f)?;
            write!(f, "texture[{}]", self.sampler)?;
            sep(f)?;
            write!(f, "{}", self.tex_target.keyword())?;
        }
        Ok(())
    }
}

/// A complete shader program: validated instruction list plus metadata the
/// timing simulator needs (temporaries used → thread availability).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    target: ShaderTarget,
    instructions: Vec<Instruction>,
    temps_used: usize,
    samplers_used: Vec<u8>,
    has_kill: bool,
}

/// Errors produced when validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program has no `END` instruction or it is not last.
    MissingEnd,
    /// The program exceeds [`limits::MAX_INSTRUCTIONS`].
    TooLong(usize),
    /// A fragment-only opcode appears in a vertex program.
    FragmentOnlyOpcode(Opcode),
    /// An instruction reads an `Output` register or writes a non-writable
    /// bank.
    BadBankUsage(&'static str),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::MissingEnd => write!(f, "program must end with a single END"),
            ProgramError::TooLong(n) => {
                write!(f, "program has {n} instructions, max {}", limits::MAX_INSTRUCTIONS)
            }
            ProgramError::FragmentOnlyOpcode(op) => {
                write!(f, "opcode {op} is not allowed in a vertex program")
            }
            ProgramError::BadBankUsage(what) => write!(f, "invalid register bank usage: {what}"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Validates an instruction list into a program.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn new(
        target: ShaderTarget,
        instructions: Vec<Instruction>,
    ) -> Result<Self, ProgramError> {
        if instructions.len() > limits::MAX_INSTRUCTIONS {
            return Err(ProgramError::TooLong(instructions.len()));
        }
        match instructions.last() {
            Some(i) if i.op == Opcode::End => {}
            _ => return Err(ProgramError::MissingEnd),
        }
        if instructions.iter().filter(|i| i.op == Opcode::End).count() != 1 {
            return Err(ProgramError::MissingEnd);
        }
        let mut temps_used = 0usize;
        let mut samplers_used = Vec::new();
        let mut has_kill = false;
        for inst in &instructions {
            if target == ShaderTarget::Vertex && inst.op.fragment_only() {
                return Err(ProgramError::FragmentOnlyOpcode(inst.op));
            }
            if inst.op == Opcode::Kil {
                has_kill = true;
            }
            if let Some(dst) = &inst.dst {
                match dst.reg.bank {
                    Bank::Temp => temps_used = temps_used.max(dst.reg.index as usize + 1),
                    Bank::Output => {}
                    Bank::Input | Bank::Param => {
                        return Err(ProgramError::BadBankUsage("write to read-only bank"))
                    }
                }
            }
            for src in inst.srcs.iter().flatten() {
                match src.reg.bank {
                    Bank::Output => {
                        return Err(ProgramError::BadBankUsage("read from output bank"))
                    }
                    Bank::Temp => temps_used = temps_used.max(src.reg.index as usize + 1),
                    _ => {}
                }
            }
            if inst.op.is_texture() && !samplers_used.contains(&inst.sampler) {
                samplers_used.push(inst.sampler);
            }
        }
        samplers_used.sort_unstable();
        Ok(Program { target, instructions, temps_used, samplers_used, has_kill })
    }

    /// The shader target.
    pub fn target(&self) -> ShaderTarget {
        self.target
    }

    /// The validated instructions (ends with `END`).
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions including `END`.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is just `END`.
    pub fn is_empty(&self) -> bool {
        self.instructions.len() <= 1
    }

    /// Highest temporary register index used plus one. Determines how many
    /// physical registers a thread needs, which limits the number of
    /// threads in flight (paper §2.3).
    pub fn temps_used(&self) -> usize {
        self.temps_used
    }

    /// Sorted list of sampler indices the program reads.
    pub fn samplers_used(&self) -> &[u8] {
        &self.samplers_used
    }

    /// Whether the program may kill fragments.
    pub fn has_kill(&self) -> bool {
        self.has_kill
    }

    /// Number of texture instructions (the ALU:TEX ratio of the case study
    /// derives from this).
    pub fn texture_instruction_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.op.is_texture()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swizzle_parse_forms() {
        assert_eq!(Swizzle::parse("xyzw"), Some(Swizzle::IDENTITY));
        assert_eq!(Swizzle::parse("x"), Some(Swizzle::broadcast(Comp::X)));
        assert_eq!(
            Swizzle::parse("wzyx"),
            Some(Swizzle([Comp::W, Comp::Z, Comp::Y, Comp::X]))
        );
        assert_eq!(Swizzle::parse("xy"), None);
        assert_eq!(Swizzle::parse("abcd"), None);
    }

    #[test]
    fn write_mask_requires_order() {
        assert_eq!(WriteMask::parse("xw"), Some(WriteMask([true, false, false, true])));
        assert_eq!(WriteMask::parse("wx"), None);
        assert_eq!(WriteMask::parse("xyzw"), Some(WriteMask::ALL));
    }

    #[test]
    fn opcode_mnemonic_round_trip() {
        for op in [
            Opcode::Mov,
            Opcode::Mad,
            Opcode::Dp4,
            Opcode::Rsq,
            Opcode::Tex,
            Opcode::Kil,
            Opcode::End,
        ] {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("NOP"), None);
    }

    #[test]
    fn reg_limits_enforced() {
        let r = Reg::temp(31);
        assert_eq!(r.index, 31);
        let result = std::panic::catch_unwind(|| Reg::temp(32));
        assert!(result.is_err());
    }

    #[test]
    fn program_requires_end() {
        let insts = vec![Instruction::alu(
            Opcode::Mov,
            Dst::reg(Reg::output(0)),
            &[Src::reg(Reg::input(0))],
        )];
        assert_eq!(
            Program::new(ShaderTarget::Vertex, insts).unwrap_err(),
            ProgramError::MissingEnd
        );
    }

    #[test]
    fn program_tracks_temps_and_samplers() {
        let insts = vec![
            Instruction::tex(
                Opcode::Tex,
                Dst::reg(Reg::temp(3)),
                Src::reg(Reg::input(2)),
                5,
                TexTarget::Tex2D,
            ),
            Instruction::alu(
                Opcode::Mov,
                Dst::reg(Reg::output(0)),
                &[Src::reg(Reg::temp(3))],
            ),
            Instruction::nullary(Opcode::End),
        ];
        let p = Program::new(ShaderTarget::Fragment, insts).unwrap();
        assert_eq!(p.temps_used(), 4);
        assert_eq!(p.samplers_used(), &[5]);
        assert_eq!(p.texture_instruction_count(), 1);
        assert!(!p.has_kill());
    }

    #[test]
    fn vertex_program_rejects_texture() {
        let insts = vec![
            Instruction::tex(
                Opcode::Tex,
                Dst::reg(Reg::temp(0)),
                Src::reg(Reg::input(0)),
                0,
                TexTarget::Tex2D,
            ),
            Instruction::nullary(Opcode::End),
        ];
        assert_eq!(
            Program::new(ShaderTarget::Vertex, insts).unwrap_err(),
            ProgramError::FragmentOnlyOpcode(Opcode::Tex)
        );
    }

    #[test]
    fn bank_usage_is_validated() {
        let write_input = vec![
            Instruction::alu(Opcode::Mov, Dst::reg(Reg::input(0)), &[Src::reg(Reg::temp(0))]),
            Instruction::nullary(Opcode::End),
        ];
        assert!(matches!(
            Program::new(ShaderTarget::Vertex, write_input).unwrap_err(),
            ProgramError::BadBankUsage(_)
        ));
        let read_output = vec![
            Instruction::alu(Opcode::Mov, Dst::reg(Reg::temp(0)), &[Src::reg(Reg::output(0))]),
            Instruction::nullary(Opcode::End),
        ];
        assert!(matches!(
            Program::new(ShaderTarget::Vertex, read_output).unwrap_err(),
            ProgramError::BadBankUsage(_)
        ));
    }

    #[test]
    fn instruction_display_is_assembly_like() {
        let i = Instruction::alu(
            Opcode::Mad,
            Dst::reg(Reg::temp(0)).masked(WriteMask::parse("xyz").unwrap()),
            &[
                Src::reg(Reg::input(1)),
                Src::reg(Reg::param(4)).swizzled(Swizzle::broadcast(Comp::W)),
                Src::reg(Reg::temp(2)).negated(),
            ],
        )
        .saturated();
        assert_eq!(i.to_string(), "MAD_SAT r0.xyz, i1, c4.wwww, -r2");
    }

    #[test]
    fn latencies_are_in_paper_range() {
        for op in [
            Opcode::Mov,
            Opcode::Add,
            Opcode::Mul,
            Opcode::Mad,
            Opcode::Dp4,
            Opcode::Rcp,
            Opcode::Pow,
            Opcode::Sin,
        ] {
            let lat = op.default_latency();
            assert!((1..=9).contains(&lat), "{op} latency {lat} outside 1..=9");
        }
    }
}
