//! The shader emulator: a threaded interpreter for the ATTILA ISA.
//!
//! The `ShaderEmulator` of the paper "implements a threaded interpreter
//! that executes, instruction by instruction, shader programs updating the
//! stored per-thread state (registers)". It is *used by* the timing boxes
//! (`ShaderFetch` / `ShaderDecodeExecute`) but contains no timing itself —
//! keeping emulation bugs separate from simulation bugs, one of the stated
//! benefits of the ATTILA design.
//!
//! Texture instructions do not sample directly: they surface a
//! [`TextureRequest`] so the caller (the timing model's Texture Unit, or
//! the golden-model renderer) performs the access and resumes the thread
//! with [`ShaderEmulator::complete_texture`]. This mirrors the hardware,
//! where a texture access blocks the thread until the texture operation
//! finishes.

use std::sync::Arc;

use crate::isa::{limits, Bank, Comp, Instruction, Opcode, Program, Src, TexTarget};
use crate::vector::Vec4;

/// Identifier of a live thread inside a [`ShaderEmulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub usize);

/// A texture access requested by a thread; the thread is blocked until the
/// caller answers with [`ShaderEmulator::complete_texture`].
#[derive(Debug, Clone, PartialEq)]
pub struct TextureRequest {
    /// The thread that issued the access.
    pub thread: ThreadId,
    /// Sampler index (`texture[n]`).
    pub sampler: u8,
    /// Texture target named by the instruction.
    pub target: TexTarget,
    /// The (possibly projected) coordinates, straight from the register.
    pub coords: Vec4,
    /// LOD bias (`TXB`) in effect, 0 otherwise.
    pub lod_bias: f32,
    /// Whether coordinates must be divided by `w` (`TXP`).
    pub projective: bool,
}

/// Result of stepping a thread one instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum StepResult {
    /// The instruction executed; the timing model should charge `latency`
    /// cycles before the result may be consumed.
    Executed {
        /// Execution latency of the retired instruction.
        latency: u64,
    },
    /// A texture instruction started; the thread is blocked.
    Texture(TextureRequest),
    /// The program reached `END` (or the fragment was killed); outputs are
    /// ready to collect.
    Finished {
        /// Whether a `KIL` culled the fragment.
        killed: bool,
    },
}

/// Per-thread architectural state.
#[derive(Debug, Clone)]
struct ThreadState {
    pc: usize,
    inputs: [Vec4; limits::INPUTS],
    outputs: [Vec4; limits::OUTPUTS],
    temps: Vec<Vec4>,
    killed: bool,
    finished: bool,
    blocked_on_tex: Option<Instruction>,
}

/// A threaded interpreter executing one [`Program`] for many independent
/// inputs (vertices or fragments).
///
/// # Examples
///
/// ```
/// use attila_emu::asm;
/// use attila_emu::shader::{ShaderEmulator, StepResult};
/// use attila_emu::Vec4;
///
/// let program = asm::assemble("!!ATTILAvp1.0\nADD o0, i0, c0;\nEND;")?;
/// let mut emu = ShaderEmulator::new(std::sync::Arc::new(program));
/// emu.set_constant(0, Vec4::splat(1.0));
/// let t = emu.spawn(&[Vec4::new(1.0, 2.0, 3.0, 4.0)]);
/// while !matches!(emu.step(t), StepResult::Finished { .. }) {}
/// assert_eq!(emu.output(t, 0), Vec4::new(2.0, 3.0, 4.0, 5.0));
/// # Ok::<(), attila_emu::asm::AsmError>(())
/// ```
#[derive(Debug)]
pub struct ShaderEmulator {
    program: Arc<Program>,
    constants: Vec<Vec4>,
    threads: Vec<ThreadState>,
    free_list: Vec<usize>,
}

impl ShaderEmulator {
    /// Creates an emulator for `program` with all constants zeroed.
    pub fn new(program: Arc<Program>) -> Self {
        ShaderEmulator {
            program,
            constants: vec![Vec4::ZERO; limits::PARAMS],
            threads: Vec::new(),
            free_list: Vec::new(),
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Replaces the running program. Existing threads keep executing the
    /// old shape only if none are live; callers must drain threads first.
    ///
    /// # Panics
    ///
    /// Panics if threads are still live.
    pub fn set_program(&mut self, program: Arc<Program>) {
        assert_eq!(
            self.live_threads(),
            0,
            "cannot switch programs while threads are in flight"
        );
        self.threads.clear();
        self.free_list.clear();
        self.program = program;
    }

    /// Sets constant register `c<index>` (program parameter).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_constant(&mut self, index: usize, value: Vec4) {
        self.constants[index] = value;
    }

    /// Reads back a constant register.
    pub fn constant(&self, index: usize) -> Vec4 {
        self.constants[index]
    }

    /// Creates a thread with the given input attributes (missing inputs
    /// read as zero) and returns its id.
    pub fn spawn(&mut self, inputs: &[Vec4]) -> ThreadId {
        let mut st = ThreadState {
            pc: 0,
            inputs: [Vec4::ZERO; limits::INPUTS],
            outputs: [Vec4::ZERO; limits::OUTPUTS],
            temps: vec![Vec4::ZERO; self.program.temps_used()],
            killed: false,
            finished: false,
            blocked_on_tex: None,
        };
        for (i, v) in inputs.iter().take(limits::INPUTS).enumerate() {
            st.inputs[i] = *v;
        }
        match self.free_list.pop() {
            Some(slot) => {
                self.threads[slot] = st;
                ThreadId(slot)
            }
            None => {
                self.threads.push(st);
                ThreadId(self.threads.len() - 1)
            }
        }
    }

    /// Number of threads currently allocated (not yet
    /// [retired](Self::retire)).
    pub fn live_threads(&self) -> usize {
        self.threads.len() - self.free_list.len()
    }

    /// Executes the next instruction of `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the thread is finished, retired or blocked on an
    /// unanswered texture request.
    pub fn step(&mut self, thread: ThreadId) -> StepResult {
        let program = Arc::clone(&self.program);
        let st = &mut self.threads[thread.0];
        assert!(!st.finished, "stepping a finished thread");
        assert!(st.blocked_on_tex.is_none(), "thread is blocked on a texture access");
        let inst = program.instructions()[st.pc];

        if inst.op == Opcode::End {
            st.finished = true;
            return StepResult::Finished { killed: st.killed };
        }
        if inst.op.is_texture() {
            let coords = read_src(st, &self.constants, &inst.srcs[0].expect("tex coord src"));
            st.blocked_on_tex = Some(inst);
            return StepResult::Texture(TextureRequest {
                thread,
                sampler: inst.sampler,
                target: inst.tex_target,
                coords,
                lod_bias: if inst.op == Opcode::Txb { coords.w } else { 0.0 },
                projective: inst.op == Opcode::Txp,
            });
        }
        if inst.op == Opcode::Kil {
            let v = read_src(st, &self.constants, &inst.srcs[0].expect("kil src"));
            if v.x < 0.0 || v.y < 0.0 || v.z < 0.0 || v.w < 0.0 {
                st.killed = true;
                st.finished = true;
                return StepResult::Finished { killed: true };
            }
            st.pc += 1;
            return StepResult::Executed { latency: inst.op.default_latency() };
        }

        let result = exec_alu(st, &self.constants, &inst);
        write_dst(st, &inst, result);
        st.pc += 1;
        StepResult::Executed { latency: inst.op.default_latency() }
    }

    /// Delivers the filtered texel for a pending [`TextureRequest`],
    /// unblocking the thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread has no pending texture access.
    pub fn complete_texture(&mut self, thread: ThreadId, texel: Vec4) {
        let st = &mut self.threads[thread.0];
        let inst = st.blocked_on_tex.take().expect("no pending texture access");
        write_dst(st, &inst, texel);
        st.pc += 1;
    }

    /// Whether the thread has reached `END` (or was killed).
    pub fn is_finished(&self, thread: ThreadId) -> bool {
        self.threads[thread.0].finished
    }

    /// Whether the thread was culled by `KIL`.
    pub fn is_killed(&self, thread: ThreadId) -> bool {
        self.threads[thread.0].killed
    }

    /// Reads output register `o<index>` of a thread.
    pub fn output(&self, thread: ThreadId, index: usize) -> Vec4 {
        self.threads[thread.0].outputs[index]
    }

    /// Copies all output registers of a thread.
    pub fn outputs(&self, thread: ThreadId) -> [Vec4; limits::OUTPUTS] {
        self.threads[thread.0].outputs
    }

    /// Releases a finished thread's state for reuse.
    pub fn retire(&mut self, thread: ThreadId) {
        debug_assert!(!self.free_list.contains(&thread.0), "double retire");
        self.free_list.push(thread.0);
    }

    /// Runs a thread to completion, sampling textures through `sample`.
    /// Returns `(outputs, killed)`. This is the golden-model path used for
    /// functional verification.
    pub fn run_to_end(
        &mut self,
        thread: ThreadId,
        mut sample: impl FnMut(&TextureRequest) -> Vec4,
    ) -> ([Vec4; limits::OUTPUTS], bool) {
        loop {
            match self.step(thread) {
                StepResult::Executed { .. } => {}
                StepResult::Texture(req) => {
                    let texel = sample(&req);
                    self.complete_texture(thread, texel);
                }
                StepResult::Finished { killed } => {
                    return (self.outputs(thread), killed);
                }
            }
        }
    }
}

fn read_src(st: &ThreadState, constants: &[Vec4], src: &Src) -> Vec4 {
    let raw = match src.reg.bank {
        Bank::Input => st.inputs[src.reg.index as usize],
        Bank::Temp => st.temps[src.reg.index as usize],
        Bank::Param => constants[src.reg.index as usize],
        Bank::Output => unreachable!("validated programs never read outputs"),
    };
    let sw = src.swizzle.0;
    let v = Vec4::new(
        raw[sw[0].index()],
        raw[sw[1].index()],
        raw[sw[2].index()],
        raw[sw[3].index()],
    );
    if src.negate {
        -v
    } else {
        v
    }
}

fn write_dst(st: &mut ThreadState, inst: &Instruction, mut value: Vec4) {
    let Some(dst) = inst.dst else { return };
    if inst.saturate {
        value = value.saturate();
    }
    let target = match dst.reg.bank {
        Bank::Output => &mut st.outputs[dst.reg.index as usize],
        Bank::Temp => &mut st.temps[dst.reg.index as usize],
        Bank::Input | Bank::Param => unreachable!("validated programs never write these banks"),
    };
    for i in 0..4 {
        if dst.mask.writes(i) {
            target[i] = value[i];
        }
    }
}

fn exec_alu(st: &ThreadState, constants: &[Vec4], inst: &Instruction) -> Vec4 {
    let src = |i: usize| read_src(st, constants, &inst.srcs[i].expect("operand"));
    match inst.op {
        Opcode::Mov => src(0),
        Opcode::Add => src(0) + src(1),
        Opcode::Sub => src(0) - src(1),
        Opcode::Mul => src(0) * src(1),
        Opcode::Mad => src(0) * src(1) + src(2),
        Opcode::Dp3 => Vec4::splat(src(0).dot3(src(1))),
        Opcode::Dp4 => Vec4::splat(src(0).dot4(src(1))),
        Opcode::Dph => Vec4::splat(src(0).dph(src(1))),
        Opcode::Min => src(0).min(src(1)),
        Opcode::Max => src(0).max(src(1)),
        Opcode::Slt => src(0).zip(src(1), |a, b| if a < b { 1.0 } else { 0.0 }),
        Opcode::Sge => src(0).zip(src(1), |a, b| if a >= b { 1.0 } else { 0.0 }),
        Opcode::Rcp => Vec4::splat(1.0 / src(0).x),
        Opcode::Rsq => Vec4::splat(1.0 / src(0).x.abs().sqrt()),
        Opcode::Ex2 => Vec4::splat(src(0).x.exp2()),
        Opcode::Lg2 => Vec4::splat(src(0).x.abs().log2()),
        Opcode::Pow => Vec4::splat(src(0).x.abs().powf(src(1).x)),
        Opcode::Frc => src(0).fract(),
        Opcode::Flr => src(0).floor(),
        Opcode::Abs => src(0).abs(),
        Opcode::Cmp => {
            let (c, a, b) = (src(0), src(1), src(2));
            Vec4::new(
                if c.x < 0.0 { a.x } else { b.x },
                if c.y < 0.0 { a.y } else { b.y },
                if c.z < 0.0 { a.z } else { b.z },
                if c.w < 0.0 { a.w } else { b.w },
            )
        }
        Opcode::Lrp => {
            let (t, a, b) = (src(0), src(1), src(2));
            t * a + (Vec4::ONE - t) * b
        }
        Opcode::Xpd => src(0).cross3(src(1)),
        Opcode::Sin => Vec4::splat(src(0).x.sin()),
        Opcode::Cos => Vec4::splat(src(0).x.cos()),
        Opcode::Tex | Opcode::Txb | Opcode::Txp | Opcode::Kil | Opcode::End => {
            unreachable!("handled before exec_alu")
        }
    }
}

/// Convenience: returns component `c` of `v` (used by scalar-source tests).
pub fn component(v: Vec4, c: Comp) -> f32 {
    v[c.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_fp(body: &str, inputs: &[Vec4], constants: &[(usize, Vec4)]) -> (Vec4, bool) {
        let src = format!("!!ATTILAfp1.0\n{body}\nEND;");
        let program = Arc::new(assemble(&src).expect("assembles"));
        let mut emu = ShaderEmulator::new(program);
        for (i, v) in constants {
            emu.set_constant(*i, *v);
        }
        let t = emu.spawn(inputs);
        let (outs, killed) = emu.run_to_end(t, |req| {
            // Deterministic fake texture: colour derived from coords.
            Vec4::new(req.coords.x, req.coords.y, req.sampler as f32, 1.0)
        });
        (outs[0], killed)
    }

    #[test]
    fn mov_add_mul_chain() {
        let (out, _) = run_fp(
            "MOV r0, i0;\nADD r0, r0, r0;\nMUL o0, r0, c0;",
            &[Vec4::new(1.0, 2.0, 3.0, 4.0)],
            &[(0, Vec4::splat(10.0))],
        );
        assert_eq!(out, Vec4::new(20.0, 40.0, 60.0, 80.0));
    }

    #[test]
    fn dot_products_broadcast() {
        let (out, _) = run_fp(
            "DP3 o0, i0, i1;",
            &[Vec4::new(1.0, 2.0, 3.0, 100.0), Vec4::new(4.0, 5.0, 6.0, 100.0)],
            &[],
        );
        assert_eq!(out, Vec4::splat(32.0));
    }

    #[test]
    fn scalar_ops_use_selected_component() {
        let (out, _) = run_fp("RCP o0, i0.w;", &[Vec4::new(0.0, 0.0, 0.0, 4.0)], &[]);
        assert_eq!(out, Vec4::splat(0.25));
        let (out, _) = run_fp("RSQ o0, i0.y;", &[Vec4::new(0.0, 16.0, 0.0, 0.0)], &[]);
        assert_eq!(out, Vec4::splat(0.25));
    }

    #[test]
    fn mad_and_lrp() {
        let a = Vec4::new(1.0, 2.0, 3.0, 4.0);
        let b = Vec4::splat(2.0);
        let c = Vec4::splat(1.0);
        let (out, _) = run_fp("MAD o0, i0, i1, i2;", &[a, b, c], &[]);
        assert_eq!(out, Vec4::new(3.0, 5.0, 7.0, 9.0));
        let (out, _) = run_fp(
            "LRP o0, c0, i0, i1;",
            &[Vec4::splat(10.0), Vec4::splat(20.0)],
            &[(0, Vec4::splat(0.25))],
        );
        assert_eq!(out, Vec4::splat(17.5));
    }

    #[test]
    fn slt_sge_cmp() {
        let (out, _) = run_fp(
            "SLT o0, i0, i1;",
            &[Vec4::new(0.0, 2.0, -1.0, 5.0), Vec4::new(1.0, 1.0, 1.0, 5.0)],
            &[],
        );
        assert_eq!(out, Vec4::new(1.0, 0.0, 1.0, 0.0));
        let (out, _) = run_fp(
            "CMP o0, i0, i1, i2;",
            &[Vec4::new(-1.0, 1.0, -0.5, 0.0), Vec4::splat(7.0), Vec4::splat(9.0)],
            &[],
        );
        assert_eq!(out, Vec4::new(7.0, 9.0, 7.0, 9.0));
    }

    #[test]
    fn saturate_clamps_result() {
        let (out, _) = run_fp("ADD_SAT o0, i0, i0;", &[Vec4::new(0.4, -1.0, 0.1, 2.0)], &[]);
        assert_eq!(out, Vec4::new(0.8, 0.0, 0.2, 1.0));
    }

    #[test]
    fn write_mask_preserves_components() {
        let (out, _) = run_fp(
            "MOV o0, i1;\nMOV o0.xz, i0;",
            &[Vec4::splat(5.0), Vec4::splat(1.0)],
            &[],
        );
        assert_eq!(out, Vec4::new(5.0, 1.0, 5.0, 1.0));
    }

    #[test]
    fn kill_on_negative_component() {
        let (_, killed) = run_fp("KIL i0;\nMOV o0, i0;", &[Vec4::new(1.0, -0.1, 0.0, 0.0)], &[]);
        assert!(killed);
        let (_, killed) = run_fp("KIL i0;\nMOV o0, i0;", &[Vec4::new(1.0, 0.1, 0.0, 0.0)], &[]);
        assert!(!killed);
    }

    #[test]
    fn texture_request_blocks_and_resumes() {
        let src = "!!ATTILAfp1.0\nTEX r0, i0, texture[2], 2D;\nMOV o0, r0;\nEND;";
        let program = Arc::new(assemble(src).unwrap());
        let mut emu = ShaderEmulator::new(program);
        let t = emu.spawn(&[Vec4::new(0.5, 0.25, 0.0, 0.0)]);
        let StepResult::Texture(req) = emu.step(t) else {
            panic!("expected texture request")
        };
        assert_eq!(req.sampler, 2);
        assert_eq!(req.coords.x, 0.5);
        assert!(!req.projective);
        emu.complete_texture(t, Vec4::splat(0.9));
        assert!(matches!(emu.step(t), StepResult::Executed { .. }));
        assert!(matches!(emu.step(t), StepResult::Finished { killed: false }));
        assert_eq!(emu.output(t, 0), Vec4::splat(0.9));
    }

    #[test]
    fn txp_flags_projection_and_txb_extracts_bias() {
        let src = "!!ATTILAfp1.0\nTXP r0, i0, texture[0], 2D;\nTXB r1, i1, texture[0], 2D;\nMOV o0, r0;\nEND;";
        let program = Arc::new(assemble(src).unwrap());
        let mut emu = ShaderEmulator::new(program);
        let t = emu.spawn(&[Vec4::new(2.0, 2.0, 0.0, 2.0), Vec4::new(0.1, 0.1, 0.0, -1.5)]);
        let StepResult::Texture(req) = emu.step(t) else { panic!() };
        assert!(req.projective);
        emu.complete_texture(t, Vec4::ZERO);
        let StepResult::Texture(req) = emu.step(t) else { panic!() };
        assert_eq!(req.lod_bias, -1.5);
    }

    #[test]
    fn threads_are_independent() {
        let src = "!!ATTILAvp1.0\nADD o0, i0, c0;\nEND;";
        let program = Arc::new(assemble(src).unwrap());
        let mut emu = ShaderEmulator::new(program);
        emu.set_constant(0, Vec4::splat(100.0));
        let t1 = emu.spawn(&[Vec4::splat(1.0)]);
        let t2 = emu.spawn(&[Vec4::splat(2.0)]);
        // Interleave execution.
        emu.step(t1);
        emu.step(t2);
        emu.step(t1);
        emu.step(t2);
        assert_eq!(emu.output(t1, 0), Vec4::splat(101.0));
        assert_eq!(emu.output(t2, 0), Vec4::splat(102.0));
    }

    #[test]
    fn retire_recycles_slots() {
        let src = "!!ATTILAvp1.0\nMOV o0, i0;\nEND;";
        let program = Arc::new(assemble(src).unwrap());
        let mut emu = ShaderEmulator::new(program);
        let t1 = emu.spawn(&[]);
        emu.run_to_end(t1, |_| Vec4::ZERO);
        emu.retire(t1);
        assert_eq!(emu.live_threads(), 0);
        let t2 = emu.spawn(&[]);
        assert_eq!(t1.0, t2.0, "slot should be reused");
    }

    #[test]
    fn vertex_transform_program() {
        // The canonical 4xDP4 position transform with an identity matrix.
        let src = "!!ATTILAvp1.0\n\
                   DP4 o0.x, c0, i0;\n\
                   DP4 o0.y, c1, i0;\n\
                   DP4 o0.z, c2, i0;\n\
                   DP4 o0.w, c3, i0;\n\
                   END;";
        let program = Arc::new(assemble(src).unwrap());
        let mut emu = ShaderEmulator::new(program);
        emu.set_constant(0, Vec4::new(1.0, 0.0, 0.0, 0.0));
        emu.set_constant(1, Vec4::new(0.0, 1.0, 0.0, 0.0));
        emu.set_constant(2, Vec4::new(0.0, 0.0, 1.0, 0.0));
        emu.set_constant(3, Vec4::new(0.0, 0.0, 0.0, 1.0));
        let t = emu.spawn(&[Vec4::new(3.0, -4.0, 5.0, 1.0)]);
        let (outs, _) = emu.run_to_end(t, |_| Vec4::ZERO);
        assert_eq!(outs[0], Vec4::new(3.0, -4.0, 5.0, 1.0));
    }
}
