//! Assembler and disassembler for the ATTILA shader ISA.
//!
//! The ATTILA OpenGL library feeds shader programs to the GPU either
//! straight from `ARB_vertex_program`/`ARB_fragment_program` strings or by
//! generating them for the fixed-function pipeline. This module implements
//! the equivalent textual format:
//!
//! ```text
//! !!ATTILAfp1.0
//! # modulate a texture with the interpolated colour
//! TEX r0, i1, texture[0], 2D;
//! MUL_SAT o0, r0, i0;
//! END;
//! ```
//!
//! Registers are written `i<n>` (inputs), `o<n>` (outputs), `r<n>`
//! (temporaries) and `c<n>` (constants); sources accept a leading `-` and a
//! `.swizzle` suffix (one or four of `xyzw`), destinations a `.mask`
//! suffix. Comments run from `#` to end of line.

use std::fmt;

use crate::isa::{
    limits, Bank, Dst, Instruction, Opcode, Program, ProgramError, Reg, ShaderTarget, Src,
    Swizzle, TexTarget, WriteMask,
};

/// Errors produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// The `!!ATTILAvp1.0` / `!!ATTILAfp1.0` header is missing or unknown.
    BadHeader(String),
    /// An unknown mnemonic.
    UnknownOpcode {
        /// 1-based source line.
        line: usize,
        /// The unrecognized mnemonic text.
        mnemonic: String,
    },
    /// A malformed operand.
    BadOperand {
        /// 1-based source line.
        line: usize,
        /// The operand text that failed to parse.
        operand: String,
    },
    /// Wrong number of operands for the opcode.
    WrongOperandCount {
        /// 1-based source line.
        line: usize,
        /// Operands the opcode requires.
        expected: usize,
        /// Operands found in the statement.
        found: usize,
    },
    /// The instruction list failed program validation.
    Invalid(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::BadHeader(h) => write!(f, "unknown program header `{h}`"),
            AsmError::UnknownOpcode { line, mnemonic } => {
                write!(f, "line {line}: unknown opcode `{mnemonic}`")
            }
            AsmError::BadOperand { line, operand } => {
                write!(f, "line {line}: cannot parse operand `{operand}`")
            }
            AsmError::WrongOperandCount { line, expected, found } => {
                write!(f, "line {line}: expected {expected} operand(s), found {found}")
            }
            AsmError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> Self {
        AsmError::Invalid(e)
    }
}

/// Header written for vertex programs.
pub const VP_HEADER: &str = "!!ATTILAvp1.0";
/// Header written for fragment programs.
pub const FP_HEADER: &str = "!!ATTILAfp1.0";

/// Assembles a source listing into a validated [`Program`].
///
/// The first non-comment line must be [`VP_HEADER`] or [`FP_HEADER`]; a
/// trailing `END;` is required (matching the ARB grammar).
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first problem found.
///
/// # Examples
///
/// ```
/// use attila_emu::asm;
/// let program = asm::assemble(
///     "!!ATTILAvp1.0\n\
///      DP4 o0.x, c0, i0;\n\
///      DP4 o0.y, c1, i0;\n\
///      DP4 o0.z, c2, i0;\n\
///      DP4 o0.w, c3, i0;\n\
///      MOV o1, i1;\n\
///      END;",
/// )?;
/// assert_eq!(program.len(), 6);
/// # Ok::<(), attila_emu::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut target = None;
    let mut instructions = Vec::new();
    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if target.is_none() {
            target = Some(match line {
                VP_HEADER => ShaderTarget::Vertex,
                FP_HEADER => ShaderTarget::Fragment,
                other => return Err(AsmError::BadHeader(other.to_string())),
            });
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            instructions.push(parse_instruction(stmt, line_no)?);
        }
    }
    let target = target.ok_or_else(|| AsmError::BadHeader(String::new()))?;
    Ok(Program::new(target, instructions)?)
}

/// Disassembles a program back to assembly source. The output reassembles
/// to an identical program.
///
/// # Examples
///
/// ```
/// use attila_emu::asm;
/// let src = "!!ATTILAfp1.0\nTEX r0, i1, texture[2], CUBE;\nMOV o0, r0;\nEND;\n";
/// let program = asm::assemble(src)?;
/// assert_eq!(asm::disassemble(&program), src);
/// # Ok::<(), attila_emu::asm::AsmError>(())
/// ```
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    out.push_str(match program.target() {
        ShaderTarget::Vertex => VP_HEADER,
        ShaderTarget::Fragment => FP_HEADER,
    });
    out.push('\n');
    for inst in program.instructions() {
        out.push_str(&inst.to_string());
        out.push_str(";\n");
    }
    out
}

fn parse_instruction(stmt: &str, line: usize) -> Result<Instruction, AsmError> {
    let (mnemonic, rest) = match stmt.find(char::is_whitespace) {
        Some(pos) => (&stmt[..pos], stmt[pos..].trim()),
        None => (stmt, ""),
    };
    let (mnemonic, saturate) = match mnemonic.strip_suffix("_SAT") {
        Some(m) => (m, true),
        None => (mnemonic, false),
    };
    let op = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| AsmError::UnknownOpcode { line, mnemonic: mnemonic.to_string() })?;

    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let expected = op.num_srcs() + usize::from(op.has_dst()) + if op.is_texture() { 2 } else { 0 };
    if operands.len() != expected {
        return Err(AsmError::WrongOperandCount { line, expected, found: operands.len() });
    }

    let mut idx = 0;
    let dst = if op.has_dst() {
        let d = parse_dst(operands[idx], line)?;
        idx += 1;
        Some(d)
    } else {
        None
    };
    let mut srcs = [None; 3];
    for slot in srcs.iter_mut().take(op.num_srcs()) {
        *slot = Some(parse_src(operands[idx], line)?);
        idx += 1;
    }
    let (sampler, tex_target) = if op.is_texture() {
        let samp = parse_sampler(operands[idx], line)?;
        let tt = TexTarget::from_keyword(operands[idx + 1]).ok_or_else(|| AsmError::BadOperand {
            line,
            operand: operands[idx + 1].to_string(),
        })?;
        (samp, tt)
    } else {
        (0, TexTarget::default())
    };

    let mut inst = Instruction { op, dst, srcs, sampler, tex_target, saturate };
    if saturate && !op.has_dst() {
        inst.saturate = false;
    }
    Ok(inst)
}

fn parse_reg(text: &str, line: usize) -> Result<Reg, AsmError> {
    let err = || AsmError::BadOperand { line, operand: text.to_string() };
    let mut chars = text.chars();
    let bank = match chars.next().ok_or_else(err)? {
        'i' => Bank::Input,
        'o' => Bank::Output,
        'r' => Bank::Temp,
        'c' => Bank::Param,
        _ => return Err(err()),
    };
    let index: usize = chars.as_str().parse().map_err(|_| err())?;
    let limit = match bank {
        Bank::Input => limits::INPUTS,
        Bank::Output => limits::OUTPUTS,
        Bank::Temp => limits::TEMPS,
        Bank::Param => limits::PARAMS,
    };
    if index >= limit {
        return Err(err());
    }
    Ok(Reg::new(bank, index))
}

fn parse_dst(text: &str, line: usize) -> Result<Dst, AsmError> {
    let err = || AsmError::BadOperand { line, operand: text.to_string() };
    match text.split_once('.') {
        Some((reg, mask)) => {
            let mask = WriteMask::parse(mask).ok_or_else(err)?;
            Ok(Dst { reg: parse_reg(reg, line)?, mask })
        }
        None => Ok(Dst::reg(parse_reg(text, line)?)),
    }
}

fn parse_src(text: &str, line: usize) -> Result<Src, AsmError> {
    let err = || AsmError::BadOperand { line, operand: text.to_string() };
    let (negate, text) = match text.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, text),
    };
    let (reg_text, swizzle) = match text.split_once('.') {
        Some((reg, sw)) => (reg, Swizzle::parse(sw).ok_or_else(err)?),
        None => (text, Swizzle::IDENTITY),
    };
    Ok(Src { reg: parse_reg(reg_text, line)?, swizzle, negate })
}

fn parse_sampler(text: &str, line: usize) -> Result<u8, AsmError> {
    let err = || AsmError::BadOperand { line, operand: text.to_string() };
    let inner = text.strip_prefix("texture[").and_then(|t| t.strip_suffix(']')).ok_or_else(err)?;
    let idx: usize = inner.parse().map_err(|_| err())?;
    if idx >= limits::SAMPLERS {
        return Err(err());
    }
    Ok(idx as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Comp;

    #[test]
    fn assemble_minimal_vertex_program() {
        let p = assemble("!!ATTILAvp1.0\nMOV o0, i0;\nEND;").unwrap();
        assert_eq!(p.target(), ShaderTarget::Vertex);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "# leading comment\n!!ATTILAvp1.0\n\n# body comment\nMOV o0, i0; # trailing\nEND;",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn multiple_statements_per_line() {
        let p = assemble("!!ATTILAvp1.0\nMOV r0, i0; MOV o0, r0; END;").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn swizzles_negation_masks() {
        let p = assemble("!!ATTILAvp1.0\nMAD r1.xw, -i0.wzyx, c2.x, r0;\nMOV o0, r1;\nEND;")
            .unwrap();
        let inst = &p.instructions()[0];
        assert_eq!(inst.op, Opcode::Mad);
        let dst = inst.dst.unwrap();
        assert_eq!(dst.mask, WriteMask([true, false, false, true]));
        let s0 = inst.srcs[0].unwrap();
        assert!(s0.negate);
        assert_eq!(s0.swizzle, Swizzle([Comp::W, Comp::Z, Comp::Y, Comp::X]));
        let s1 = inst.srcs[1].unwrap();
        assert_eq!(s1.swizzle, Swizzle::broadcast(Comp::X));
    }

    #[test]
    fn texture_instruction_parses() {
        let p = assemble("!!ATTILAfp1.0\nTEX r0, i1, texture[3], 3D;\nMOV o0, r0;\nEND;")
            .unwrap();
        let inst = &p.instructions()[0];
        assert_eq!(inst.sampler, 3);
        assert_eq!(inst.tex_target, TexTarget::Tex3D);
    }

    #[test]
    fn kil_parses_without_dst() {
        let p = assemble("!!ATTILAfp1.0\nKIL -i0;\nMOV o0, i0;\nEND;").unwrap();
        let inst = &p.instructions()[0];
        assert_eq!(inst.op, Opcode::Kil);
        assert!(inst.dst.is_none());
        assert!(inst.srcs[0].unwrap().negate);
    }

    #[test]
    fn sat_suffix() {
        let p = assemble("!!ATTILAfp1.0\nMUL_SAT o0, i0, i1;\nEND;").unwrap();
        assert!(p.instructions()[0].saturate);
    }

    #[test]
    fn header_required() {
        assert!(matches!(assemble("MOV o0, i0;\nEND;"), Err(AsmError::BadHeader(_))));
        assert!(matches!(assemble(""), Err(AsmError::BadHeader(_))));
    }

    #[test]
    fn unknown_opcode_reports_line() {
        let err = assemble("!!ATTILAvp1.0\nFOO o0, i0;\nEND;").unwrap_err();
        assert_eq!(
            err,
            AsmError::UnknownOpcode { line: 2, mnemonic: "FOO".into() }
        );
    }

    #[test]
    fn wrong_operand_count_detected() {
        let err = assemble("!!ATTILAvp1.0\nADD o0, i0;\nEND;").unwrap_err();
        assert!(matches!(err, AsmError::WrongOperandCount { expected: 3, found: 2, .. }));
    }

    #[test]
    fn bad_operands_detected() {
        for bad in ["MOV q0, i0;", "MOV o0, i0.xyz;", "MOV o99, i0;", "MOV o0.wx, i0;"] {
            let src = format!("!!ATTILAvp1.0\n{bad}\nEND;");
            assert!(
                matches!(assemble(&src), Err(AsmError::BadOperand { .. })),
                "`{bad}` should fail"
            );
        }
    }

    #[test]
    fn fragment_only_ops_rejected_for_vertex() {
        let err = assemble("!!ATTILAvp1.0\nTEX r0, i0, texture[0], 2D;\nEND;").unwrap_err();
        assert!(matches!(err, AsmError::Invalid(ProgramError::FragmentOnlyOpcode(_))));
    }

    #[test]
    fn round_trip_preserves_program() {
        let src = "!!ATTILAfp1.0\n\
                   TEX r0, i1, texture[0], 2D;\n\
                   TEX r1, i2, texture[1], CUBE;\n\
                   DP3_SAT r2.x, r0, r1;\n\
                   POW r2.w, r2.x, c0.w;\n\
                   CMP r3, -r2.xxxx, c1, c2;\n\
                   LRP o0, r3, r0, r1;\n\
                   KIL r2;\n\
                   END;";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1, p2);
    }
}
