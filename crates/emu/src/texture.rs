//! The texture emulator.
//!
//! Per the paper (§3), the `TextureEmulator` "calculates memory addresses
//! for texture accesses, calculates the number of samples for anisotropic
//! filtering, converts texel data into the internal format and filters the
//! sampled texel data. It also implements decompression functions for
//! compressed textures."
//!
//! Texture data lives in GPU memory; the emulator reads raw bytes through
//! the [`TexelSource`] trait so the *timing* model (Texture Unit box) can
//! interpose its cache while the *golden* model reads memory directly —
//! both see identical texel bytes, which is what makes the simulator
//! execution-driven.
//!
//! Supported (paper §2.2): 1D/2D/3D/cube targets, mipmapping with LOD from
//! quad derivatives, point/bilinear/trilinear filtering (one bilinear
//! sample per cycle, a trilinear sample every two cycles in the timing
//! model), anisotropic filtering up to a configurable sample count, wrap
//! modes, and DXT1/DXT3-style block compression.

use crate::isa::TexTarget;
use crate::vector::Vec4;

/// Source of raw texture bytes (GPU memory, optionally behind a cache).
pub trait TexelSource {
    /// Copies `buf.len()` bytes starting at byte address `addr`.
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]);
}

/// A flat byte slice as a texel source (addresses index the slice).
impl TexelSource for &[u8] {
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        let start = addr as usize;
        buf.copy_from_slice(&self[start..start + buf.len()]);
    }
}

/// Texel storage formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TexFormat {
    /// 8-bit red/green/blue/alpha.
    Rgba8,
    /// 8-bit red/green/blue, alpha reads as 1.
    Rgb8,
    /// 8-bit luminance replicated to rgb, alpha reads as 1.
    L8,
    /// 8-bit alpha, rgb read as 0.
    A8,
    /// DXT1-style block compression: 4×4 texels in 8 bytes (1:8 for RGBA).
    Dxt1,
    /// DXT3-style block compression: 4×4 texels in 16 bytes, explicit
    /// 4-bit alpha (1:4).
    Dxt3,
}

impl TexFormat {
    /// Bytes per texel for uncompressed formats.
    ///
    /// # Panics
    ///
    /// Panics for compressed formats; use [`block_bytes`](Self::block_bytes).
    pub fn bytes_per_texel(self) -> u32 {
        match self {
            TexFormat::Rgba8 => 4,
            TexFormat::Rgb8 => 3,
            TexFormat::L8 | TexFormat::A8 => 1,
            TexFormat::Dxt1 | TexFormat::Dxt3 => {
                panic!("compressed formats have no per-texel size")
            }
        }
    }

    /// Whether the format is block compressed.
    pub fn is_compressed(self) -> bool {
        matches!(self, TexFormat::Dxt1 | TexFormat::Dxt3)
    }

    /// Bytes per 4×4 block for compressed formats.
    pub fn block_bytes(self) -> u32 {
        match self {
            TexFormat::Dxt1 => 8,
            TexFormat::Dxt3 => 16,
            _ => panic!("{self:?} is not block compressed"),
        }
    }
}

/// Texture coordinate wrap modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WrapMode {
    /// Repeat the texture (`GL_REPEAT`).
    #[default]
    Repeat,
    /// Clamp to the edge texel (`GL_CLAMP_TO_EDGE`).
    Clamp,
    /// Mirror every other repetition (`GL_MIRRORED_REPEAT`).
    Mirror,
}

impl WrapMode {
    /// Wraps texel index `i` into `[0, size)`.
    pub fn wrap(self, i: i64, size: u32) -> u32 {
        let n = size as i64;
        debug_assert!(n > 0);
        match self {
            WrapMode::Repeat => (i.rem_euclid(n)) as u32,
            WrapMode::Clamp => i.clamp(0, n - 1) as u32,
            WrapMode::Mirror => {
                let period = 2 * n;
                let m = i.rem_euclid(period);
                if m < n {
                    m as u32
                } else {
                    (period - 1 - m) as u32
                }
            }
        }
    }
}

/// Memory layout of an uncompressed texture.
///
/// Ordinary textures use 4×4-texel tiles; **render targets** keep the
/// framebuffer's 8×8-pixel tile layout so the Color Write unit and the
/// Texture Unit address the same bytes — the paper's render-to-texture
/// future-work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TexLayout {
    /// 4×4-texel tiles (the sampling-optimal layout).
    #[default]
    Tiled4,
    /// 8×8-pixel framebuffer tiles (256-byte ROP cache lines).
    FbTiled8,
}

/// Texture filtering modes (minification; magnification uses the
/// non-mipmapped variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TexFilter {
    /// Nearest texel, base level.
    Nearest,
    /// Bilinear, base level.
    #[default]
    Bilinear,
    /// Nearest mip level, bilinear within it.
    BilinearMipNearest,
    /// Full trilinear (linear between two bilinear samples).
    Trilinear,
}

/// A texture descriptor: geometry, format, sampling state and its location
/// in GPU memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TextureDesc {
    /// Texture target.
    pub target: TexTarget,
    /// Base-level width in texels.
    pub width: u32,
    /// Base-level height (1 for 1D).
    pub height: u32,
    /// Base-level depth (1 unless 3D).
    pub depth: u32,
    /// Texel format.
    pub format: TexFormat,
    /// Number of mip levels present (1 = no mipmapping).
    pub mip_levels: u32,
    /// Wrap mode for `s`.
    pub wrap_s: WrapMode,
    /// Wrap mode for `t`.
    pub wrap_t: WrapMode,
    /// Wrap mode for `r`.
    pub wrap_r: WrapMode,
    /// Filter used when minifying.
    pub min_filter: TexFilter,
    /// Maximum anisotropy (1 = isotropic; the paper's case study uses 8).
    pub max_aniso: u32,
    /// Byte address of mip level 0 in GPU memory.
    pub base_address: u64,
    /// Memory layout (render targets use the framebuffer layout).
    pub layout: TexLayout,
}

impl TextureDesc {
    /// A 2D RGBA8 descriptor with default sampling state.
    pub fn new_2d(width: u32, height: u32, format: TexFormat, base_address: u64) -> Self {
        TextureDesc {
            target: TexTarget::Tex2D,
            width,
            height,
            depth: 1,
            format,
            mip_levels: 1,
            wrap_s: WrapMode::default(),
            wrap_t: WrapMode::default(),
            wrap_r: WrapMode::default(),
            min_filter: TexFilter::default(),
            max_aniso: 1,
            base_address,
            layout: TexLayout::default(),
        }
    }

    /// A descriptor for sampling a rendered RGBA8 framebuffer surface:
    /// 8×8 framebuffer tiling, single mip, edge clamping.
    pub fn new_render_target(width: u32, height: u32, base_address: u64) -> Self {
        let mut d = TextureDesc::new_2d(width, height, TexFormat::Rgba8, base_address);
        d.layout = TexLayout::FbTiled8;
        d.wrap_s = WrapMode::Clamp;
        d.wrap_t = WrapMode::Clamp;
        d
    }

    /// Enables a full mip chain down to 1×1.
    pub fn with_full_mips(mut self) -> Self {
        self.mip_levels = full_mip_levels(self.width, self.height, self.depth);
        self.min_filter = TexFilter::Trilinear;
        self
    }

    /// Dimensions of mip `level`.
    pub fn level_dims(&self, level: u32) -> (u32, u32, u32) {
        (
            (self.width >> level).max(1),
            (self.height >> level).max(1),
            (self.depth >> level).max(1),
        )
    }

    /// Byte size of one face of mip `level`.
    pub fn level_bytes(&self, level: u32) -> u64 {
        let (w, h, d) = self.level_dims(level);
        if self.format.is_compressed() {
            let bw = w.div_ceil(4) as u64;
            let bh = h.div_ceil(4) as u64;
            bw * bh * d as u64 * self.format.block_bytes() as u64
        } else if self.layout == TexLayout::FbTiled8 {
            w.div_ceil(8) as u64 * h.div_ceil(8) as u64 * 64 * d as u64
                * self.format.bytes_per_texel() as u64
        } else {
            // Tiled4 pads each level to whole 4×4 tiles, exactly as
            // `encode_tiled` lays the data out — otherwise per-level base
            // addresses diverge for dimensions not divisible by 4.
            w.div_ceil(4) as u64 * h.div_ceil(4) as u64 * 16 * d as u64
                * self.format.bytes_per_texel() as u64
        }
    }

    /// Byte offset of one face of mip `level` from the base address.
    pub fn level_offset(&self, level: u32) -> u64 {
        (0..level).map(|l| self.level_bytes(l) * self.faces() as u64).sum()
    }

    /// Number of faces (6 for cube maps, 1 otherwise).
    pub fn faces(&self) -> u32 {
        if self.target == TexTarget::Cube {
            6
        } else {
            1
        }
    }

    /// Total bytes of storage for all mips and faces — what the driver
    /// must allocate.
    pub fn total_bytes(&self) -> u64 {
        (0..self.mip_levels).map(|l| self.level_bytes(l) * self.faces() as u64).sum()
    }
}

/// Number of mip levels for a full chain.
pub fn full_mip_levels(w: u32, h: u32, d: u32) -> u32 {
    let m = w.max(h).max(d).max(1);
    32 - m.leading_zeros()
}

/// The result of sampling: the filtered texel plus the memory footprint of
/// the access (the byte ranges read), which the timing model converts into
/// texture-cache lookups. Execution-driven simulation in a nutshell: real
/// addresses, real bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleResult {
    /// Filtered texel, RGBA in `[0,1]`.
    pub value: Vec4,
    /// Byte addresses (start, length) read from memory for this sample.
    pub accesses: Vec<(u64, u32)>,
    /// Number of bilinear sample operations the access cost (1 for
    /// bilinear, 2 for trilinear, up to `max_aniso`×2 for anisotropic) —
    /// drives the Texture Unit's throughput model.
    pub bilinear_ops: u32,
}

/// The texture emulator. Stateless; all per-texture state lives in
/// [`TextureDesc`].
#[derive(Debug, Default, Clone)]
pub struct TextureEmulator;

impl TextureEmulator {
    /// Creates the emulator.
    pub fn new() -> Self {
        TextureEmulator
    }

    /// Computes the mip LOD for a fragment quad from coordinate
    /// derivatives, as hardware does: the quad's 2×2 arrangement provides
    /// `d(u,v)/dx` and `d(u,v)/dy` for free.
    ///
    /// `coords` are the four fragments' texture coordinates in quad order
    /// `[(x,y), (x+1,y), (x,y+1), (x+1,y+1)]`. Returns `(lod, aniso_ratio,
    /// major_axis)` where `aniso_ratio ≥ 1`.
    pub fn quad_lod(&self, desc: &TextureDesc, coords: &[Vec4; 4]) -> (f32, f32, (f32, f32)) {
        let (w, h) = (desc.width as f32, desc.height as f32);
        let dx_u = (coords[1].x - coords[0].x) * w;
        let dx_v = (coords[1].y - coords[0].y) * h;
        let dy_u = (coords[2].x - coords[0].x) * w;
        let dy_v = (coords[2].y - coords[0].y) * h;
        let len_x = (dx_u * dx_u + dx_v * dx_v).sqrt();
        let len_y = (dy_u * dy_u + dy_v * dy_v).sqrt();
        let (major, minor) = if len_x >= len_y { (len_x, len_y) } else { (len_y, len_x) };
        let (major_du, major_dv) =
            if len_x >= len_y { (dx_u / w, dx_v / h) } else { (dy_u / w, dy_v / h) };
        let aniso = if minor > 1e-6 { (major / minor).min(desc.max_aniso as f32) } else { 1.0 };
        // With anisotropic filtering the LOD follows the *minor* axis.
        let rho = if desc.max_aniso > 1 { (major / aniso).max(minor) } else { major };
        let lod = if rho > 1e-6 { rho.log2() } else { 0.0 };
        (lod, aniso, (major_du, major_dv))
    }

    /// Samples a whole 2×2 fragment quad (the basic work unit of the
    /// fragment pipeline), computing LOD from the quad derivatives.
    pub fn sample_quad(
        &self,
        desc: &TextureDesc,
        mem: &mut dyn TexelSource,
        coords: &[Vec4; 4],
        lod_bias: f32,
        projective: bool,
    ) -> [SampleResult; 4] {
        let mut pc = *coords;
        if projective {
            for c in &mut pc {
                if c.w != 0.0 {
                    *c = Vec4::new(c.x / c.w, c.y / c.w, c.z / c.w, 1.0);
                }
            }
        }
        let (lod, aniso, major) = self.quad_lod(desc, &pc);
        let lod = lod + lod_bias;
        [
            self.sample_lod(desc, mem, pc[0], lod, aniso, major),
            self.sample_lod(desc, mem, pc[1], lod, aniso, major),
            self.sample_lod(desc, mem, pc[2], lod, aniso, major),
            self.sample_lod(desc, mem, pc[3], lod, aniso, major),
        ]
    }

    /// Samples at an explicit LOD (already biased). `aniso` ≥ 1 enables
    /// anisotropic sampling along `major`, the major-axis step in texture
    /// space.
    pub fn sample_lod(
        &self,
        desc: &TextureDesc,
        mem: &mut dyn TexelSource,
        coord: Vec4,
        lod: f32,
        aniso: f32,
        major: (f32, f32),
    ) -> SampleResult {
        let samples = aniso.round().max(1.0) as u32;
        if samples <= 1 {
            return self.sample_isotropic(desc, mem, coord, lod);
        }
        // Anisotropic: average several isotropic probes along the major
        // axis, as the paper's TextureEmulator "calculates the number of
        // samples for anisotropic filtering".
        let mut value = Vec4::ZERO;
        let mut accesses = Vec::new();
        let mut ops = 0;
        for i in 0..samples {
            let t = (i as f32 + 0.5) / samples as f32 - 0.5;
            let probe = Vec4::new(coord.x + major.0 * t, coord.y + major.1 * t, coord.z, coord.w);
            let r = self.sample_isotropic(desc, mem, probe, lod);
            value = value + r.value;
            accesses.extend(r.accesses);
            ops += r.bilinear_ops;
        }
        SampleResult { value: value / samples as f32, accesses, bilinear_ops: ops }
    }

    fn sample_isotropic(
        &self,
        desc: &TextureDesc,
        mem: &mut dyn TexelSource,
        coord: Vec4,
        lod: f32,
    ) -> SampleResult {
        // Cube maps: pick a face, then sample it as 2D. 3D textures:
        // pick the nearest slice (the paper supports 3D targets; full
        // inter-slice filtering is not modelled).
        let (face, coord) = if desc.target == TexTarget::Cube {
            cube_face(coord)
        } else {
            (0, coord)
        };

        let max_level = desc.mip_levels.saturating_sub(1) as f32;
        let filter =
            if lod <= 0.0 { magnify_filter(desc.min_filter) } else { desc.min_filter };
        match filter {
            TexFilter::Nearest => {
                let mut acc = Vec::new();
                let v = self.point_sample(desc, mem, coord, 0, face, &mut acc);
                SampleResult { value: v, accesses: acc, bilinear_ops: 1 }
            }
            TexFilter::Bilinear => {
                let mut acc = Vec::new();
                let v = self.bilinear_sample(desc, mem, coord, 0, face, &mut acc);
                SampleResult { value: v, accesses: acc, bilinear_ops: 1 }
            }
            TexFilter::BilinearMipNearest => {
                let level = lod.round().clamp(0.0, max_level) as u32;
                let mut acc = Vec::new();
                let v = self.bilinear_sample(desc, mem, coord, level, face, &mut acc);
                SampleResult { value: v, accesses: acc, bilinear_ops: 1 }
            }
            TexFilter::Trilinear => {
                let clamped = lod.clamp(0.0, max_level);
                let lo = clamped.floor() as u32;
                let hi = (lo + 1).min(desc.mip_levels - 1);
                let frac = clamped - lo as f32;
                let mut acc = Vec::new();
                let a = self.bilinear_sample(desc, mem, coord, lo, face, &mut acc);
                if hi == lo || frac == 0.0 {
                    return SampleResult { value: a, accesses: acc, bilinear_ops: 1 };
                }
                let b = self.bilinear_sample(desc, mem, coord, hi, face, &mut acc);
                SampleResult { value: a.lerp(b, frac), accesses: acc, bilinear_ops: 2 }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn point_sample(
        &self,
        desc: &TextureDesc,
        mem: &mut dyn TexelSource,
        coord: Vec4,
        level: u32,
        face: u32,
        accesses: &mut Vec<(u64, u32)>,
    ) -> Vec4 {
        let (w, h, d) = desc.level_dims(level);
        let i = desc.wrap_s.wrap((coord.x * w as f32).floor() as i64, w);
        let j = desc.wrap_t.wrap((coord.y * h as f32).floor() as i64, h);
        let slice = slice_for(desc, coord, d);
        self.fetch_texel_3d(desc, mem, i, j, slice, level, face, accesses)
    }

    #[allow(clippy::too_many_arguments)]
    fn bilinear_sample(
        &self,
        desc: &TextureDesc,
        mem: &mut dyn TexelSource,
        coord: Vec4,
        level: u32,
        face: u32,
        accesses: &mut Vec<(u64, u32)>,
    ) -> Vec4 {
        let (w, h, d) = desc.level_dims(level);
        let slice = slice_for(desc, coord, d);
        let u = coord.x * w as f32 - 0.5;
        let v = coord.y * h as f32 - 0.5;
        let i0 = u.floor() as i64;
        let j0 = v.floor() as i64;
        let fu = u - i0 as f32;
        let fv = v - j0 as f32;
        let i0w = desc.wrap_s.wrap(i0, w);
        let i1w = desc.wrap_s.wrap(i0 + 1, w);
        let j0w = desc.wrap_t.wrap(j0, h);
        let j1w = desc.wrap_t.wrap(j0 + 1, h);
        // All four taps hit the same (level, face, slice) plane: resolve
        // the mip-chain walk behind its base address once, not per tap.
        let plane = plane_base(desc, level, face, slice);
        let t00 = self.fetch_texel_plane(desc, mem, plane, i0w, j0w, w, accesses);
        let t10 = self.fetch_texel_plane(desc, mem, plane, i1w, j0w, w, accesses);
        let t01 = self.fetch_texel_plane(desc, mem, plane, i0w, j1w, w, accesses);
        let t11 = self.fetch_texel_plane(desc, mem, plane, i1w, j1w, w, accesses);
        t00.lerp(t10, fu).lerp(t01.lerp(t11, fu), fv)
    }

    /// Fetches and converts a single texel of a 2D face, recording the
    /// memory access. This is also where texture *addresses* are computed
    /// — the function the timing model leans on for its cache lookups.
    ///
    /// The parameters are exactly the texel coordinates plus bookkeeping;
    /// there is no meaningful struct to bundle them into.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_texel(
        &self,
        desc: &TextureDesc,
        mem: &mut dyn TexelSource,
        i: u32,
        j: u32,
        level: u32,
        face: u32,
        accesses: &mut Vec<(u64, u32)>,
    ) -> Vec4 {
        self.fetch_texel_3d(desc, mem, i, j, 0, level, face, accesses)
    }

    /// [`fetch_texel`](Self::fetch_texel) with a 3D slice index.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_texel_3d(
        &self,
        desc: &TextureDesc,
        mem: &mut dyn TexelSource,
        i: u32,
        j: u32,
        slice: u32,
        level: u32,
        face: u32,
        accesses: &mut Vec<(u64, u32)>,
    ) -> Vec4 {
        let (w, h, d) = desc.level_dims(level);
        debug_assert!(i < w && j < h && slice < d);
        let face_base = plane_base(desc, level, face, slice);
        self.fetch_texel_plane(desc, mem, face_base, i, j, w, accesses)
    }

    /// Fetches one texel given the precomputed plane base address (see
    /// [`plane_base`]) — the per-tap remainder of
    /// [`fetch_texel_3d`](Self::fetch_texel_3d), shared with the bilinear
    /// path which resolves the plane once for its four taps.
    #[allow(clippy::too_many_arguments)]
    fn fetch_texel_plane(
        &self,
        desc: &TextureDesc,
        mem: &mut dyn TexelSource,
        face_base: u64,
        i: u32,
        j: u32,
        w: u32,
        accesses: &mut Vec<(u64, u32)>,
    ) -> Vec4 {
        if desc.format.is_compressed() {
            let bw = w.div_ceil(4);
            let block = (j / 4) as u64 * bw as u64 + (i / 4) as u64;
            let bb = desc.format.block_bytes() as u64;
            let addr = face_base + block * bb;
            let mut buf = [0u8; 16];
            let blk = &mut buf[..bb as usize];
            mem.read_bytes(addr, blk);
            accesses.push((addr, bb as u32));
            match desc.format {
                TexFormat::Dxt1 => decode_dxt1_texel(blk, i % 4, j % 4),
                TexFormat::Dxt3 => decode_dxt3_texel(blk, i % 4, j % 4),
                _ => unreachable!(),
            }
        } else {
            let bpt = desc.format.bytes_per_texel();
            // Tiled layout for access locality (the paper's rasterizer
            // tiling exists for the same reason); render targets keep the
            // framebuffer's 8×8 tiles.
            let addr = face_base
                + match desc.layout {
                    TexLayout::Tiled4 => tiled_offset(i, j, w, bpt),
                    TexLayout::FbTiled8 => fb_tiled_offset(i, j, w, bpt),
                };
            let mut buf = [0u8; 4];
            let texel = &mut buf[..bpt as usize];
            mem.read_bytes(addr, texel);
            accesses.push((addr, bpt));
            convert_texel(desc.format, texel)
        }
    }
}

/// Base address of one `(level, face, slice)` plane of a texture. The
/// `level_offset` walk is O(level) over the mip chain, so callers taking
/// several texels from the same plane (bilinear taps) should resolve this
/// once and go through `fetch_texel_plane`.
fn plane_base(desc: &TextureDesc, level: u32, face: u32, slice: u32) -> u64 {
    let (_, _, d) = desc.level_dims(level);
    let level_bytes = desc.level_bytes(level);
    desc.base_address
        + desc.level_offset(level)
        + face as u64 * level_bytes
        + slice as u64 * (level_bytes / d as u64)
}

/// Byte offset of texel `(i, j)` in a `tile`×`tile`, row-major-by-tile
/// layout (the general form behind both texture tiling levels).
pub fn tiled_offset_with(i: u32, j: u32, width: u32, bytes_per_texel: u32, tile: u32) -> u64 {
    let tiles_per_row = width.div_ceil(tile);
    let tile_index = (j / tile) as u64 * tiles_per_row as u64 + (i / tile) as u64;
    let intra = ((j % tile) * tile + (i % tile)) as u64;
    (tile_index * (tile * tile) as u64 + intra) * bytes_per_texel as u64
}

/// Byte offset of texel `(i, j)` in the framebuffer's 8×8-tile layout
/// (matches the ROP surface addressing, enabling render-to-texture).
pub fn fb_tiled_offset(i: u32, j: u32, width: u32, bytes_per_texel: u32) -> u64 {
    tiled_offset_with(i, j, width, bytes_per_texel, 8)
}

/// Byte offset of texel `(i, j)` in a 4×4-tiled, row-major-by-tile layout.
pub fn tiled_offset(i: u32, j: u32, width: u32, bytes_per_texel: u32) -> u64 {
    tiled_offset_with(i, j, width, bytes_per_texel, 4)
}

/// The 3D slice selected by `coord.z` at a level with `depth` slices.
fn slice_for(desc: &TextureDesc, coord: Vec4, depth: u32) -> u32 {
    if desc.target == TexTarget::Tex3D {
        let d = depth.max(1);
        desc.wrap_r.wrap((coord.z * d as f32).floor() as i64, d)
    } else {
        0
    }
}

fn magnify_filter(f: TexFilter) -> TexFilter {
    match f {
        TexFilter::Nearest => TexFilter::Nearest,
        _ => TexFilter::Bilinear,
    }
}

/// Converts raw texel bytes to normalized RGBA.
pub fn convert_texel(format: TexFormat, bytes: &[u8]) -> Vec4 {
    let n = |b: u8| b as f32 / 255.0;
    match format {
        TexFormat::Rgba8 => Vec4::new(n(bytes[0]), n(bytes[1]), n(bytes[2]), n(bytes[3])),
        TexFormat::Rgb8 => Vec4::new(n(bytes[0]), n(bytes[1]), n(bytes[2]), 1.0),
        TexFormat::L8 => Vec4::new(n(bytes[0]), n(bytes[0]), n(bytes[0]), 1.0),
        TexFormat::A8 => Vec4::new(0.0, 0.0, 0.0, n(bytes[0])),
        _ => panic!("convert_texel on compressed format"),
    }
}

/// Selects the cube face for a direction vector and returns the face index
/// (+x,-x,+y,-y,+z,-z) and the 2D face coordinates.
pub fn cube_face(dir: Vec4) -> (u32, Vec4) {
    let (ax, ay, az) = (dir.x.abs(), dir.y.abs(), dir.z.abs());
    let (face, sc, tc, ma) = if ax >= ay && ax >= az {
        if dir.x >= 0.0 {
            (0, -dir.z, -dir.y, ax)
        } else {
            (1, dir.z, -dir.y, ax)
        }
    } else if ay >= ax && ay >= az {
        if dir.y >= 0.0 {
            (2, dir.x, dir.z, ay)
        } else {
            (3, dir.x, -dir.z, ay)
        }
    } else if dir.z >= 0.0 {
        (4, dir.x, -dir.y, az)
    } else {
        (5, -dir.x, -dir.y, az)
    };
    let ma = if ma == 0.0 { 1.0 } else { ma };
    (face, Vec4::new((sc / ma + 1.0) * 0.5, (tc / ma + 1.0) * 0.5, 0.0, 1.0))
}

// ---------------------------------------------------------------------------
// DXT block compression (paper refs [24][25]: S3TC-style texture compression)
// ---------------------------------------------------------------------------

fn rgb565_to_vec(c: u16) -> Vec4 {
    Vec4::new(
        ((c >> 11) & 0x1f) as f32 / 31.0,
        ((c >> 5) & 0x3f) as f32 / 63.0,
        (c & 0x1f) as f32 / 31.0,
        1.0,
    )
}

/// Decodes one texel from a DXT1 block (`bx`, `by` in 0..4).
pub fn decode_dxt1_texel(block: &[u8], bx: u32, by: u32) -> Vec4 {
    let c0 = u16::from_le_bytes([block[0], block[1]]);
    let c1 = u16::from_le_bytes([block[2], block[3]]);
    let p0 = rgb565_to_vec(c0);
    let p1 = rgb565_to_vec(c1);
    let bits = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
    let code = (bits >> (2 * (by * 4 + bx))) & 0x3;
    if c0 > c1 {
        match code {
            0 => p0,
            1 => p1,
            2 => p0.lerp(p1, 1.0 / 3.0),
            _ => p0.lerp(p1, 2.0 / 3.0),
        }
    } else {
        match code {
            0 => p0,
            1 => p1,
            2 => p0.lerp(p1, 0.5),
            _ => Vec4::new(0.0, 0.0, 0.0, 0.0), // 1-bit transparent black
        }
    }
}

/// Decodes one texel from a DXT3 block (explicit 4-bit alpha + DXT1 colour).
pub fn decode_dxt3_texel(block: &[u8], bx: u32, by: u32) -> Vec4 {
    let texel = by * 4 + bx;
    let alpha_nibble = (block[(texel / 2) as usize] >> ((texel % 2) * 4)) & 0xf;
    let alpha = alpha_nibble as f32 / 15.0;
    // Colour half decodes like DXT1 in always-4-colour mode.
    let c0 = u16::from_le_bytes([block[8], block[9]]);
    let c1 = u16::from_le_bytes([block[10], block[11]]);
    let p0 = rgb565_to_vec(c0);
    let p1 = rgb565_to_vec(c1);
    let bits = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);
    let code = (bits >> (2 * texel)) & 0x3;
    let mut rgb = match code {
        0 => p0,
        1 => p1,
        2 => p0.lerp(p1, 1.0 / 3.0),
        _ => p0.lerp(p1, 2.0 / 3.0),
    };
    rgb.w = alpha;
    rgb
}

fn vec_to_rgb565(v: Vec4) -> u16 {
    let r = (v.x.clamp(0.0, 1.0) * 31.0).round() as u16;
    let g = (v.y.clamp(0.0, 1.0) * 63.0).round() as u16;
    let b = (v.z.clamp(0.0, 1.0) * 31.0).round() as u16;
    (r << 11) | (g << 5) | b
}

/// Encodes a 4×4 texel block (row-major) as DXT1 using min/max endpoints.
/// A simple encoder, sufficient for generating test/workload content.
pub fn encode_dxt1_block(texels: &[Vec4; 16]) -> [u8; 8] {
    let mut lo = Vec4::ONE;
    let mut hi = Vec4::ZERO;
    for t in texels {
        lo = lo.min(*t);
        hi = hi.max(*t);
    }
    let mut c0 = vec_to_rgb565(hi);
    let mut c1 = vec_to_rgb565(lo);
    if c0 == c1 {
        // Degenerate block: all indices 0.
        if c0 == 0 {
            c0 = 1;
        } else {
            c1 = c0 - 1;
        }
    } else if c0 < c1 {
        std::mem::swap(&mut c0, &mut c1);
    }
    let p0 = rgb565_to_vec(c0);
    let p1 = rgb565_to_vec(c1);
    let palette = [p0, p1, p0.lerp(p1, 1.0 / 3.0), p0.lerp(p1, 2.0 / 3.0)];
    let mut bits = 0u32;
    for (i, t) in texels.iter().enumerate() {
        let mut best = 0;
        let mut best_d = f32::MAX;
        for (k, p) in palette.iter().enumerate() {
            let d = (*t - *p).dot3(*t - *p);
            if d < best_d {
                best_d = d;
                best = k as u32;
            }
        }
        bits |= best << (2 * i);
    }
    let mut out = [0u8; 8];
    out[..2].copy_from_slice(&c0.to_le_bytes());
    out[2..4].copy_from_slice(&c1.to_le_bytes());
    out[4..].copy_from_slice(&bits.to_le_bytes());
    out
}

/// Encodes a 4×4 texel block as DXT3 (explicit alpha + DXT1-style colour).
pub fn encode_dxt3_block(texels: &[Vec4; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for i in 0..16 {
        let a = (texels[i].w.clamp(0.0, 1.0) * 15.0).round() as u8;
        out[i / 2] |= a << ((i % 2) * 4);
    }
    // Colour part: reuse the DXT1 encoder but force 4-colour mode by
    // ensuring c0 > c1 (encode_dxt1_block already does).
    let color = encode_dxt1_block(texels);
    out[8..].copy_from_slice(&color);
    out
}

/// Writes uncompressed pixel data (row-major RGBA) into the 4×4-tiled
/// layout expected by [`TextureEmulator`]; returns the bytes to upload.
pub fn encode_tiled(
    format: TexFormat,
    width: u32,
    height: u32,
    pixels: &[Vec4],
) -> Vec<u8> {
    assert_eq!(pixels.len(), (width * height) as usize);
    if format.is_compressed() {
        let bw = width.div_ceil(4);
        let bh = height.div_ceil(4);
        let bb = format.block_bytes() as usize;
        let mut out = vec![0u8; (bw * bh) as usize * bb];
        for by in 0..bh {
            for bx in 0..bw {
                let mut block = [Vec4::ZERO; 16];
                for ty in 0..4 {
                    for tx in 0..4 {
                        let x = (bx * 4 + tx).min(width - 1);
                        let y = (by * 4 + ty).min(height - 1);
                        block[(ty * 4 + tx) as usize] = pixels[(y * width + x) as usize];
                    }
                }
                let off = ((by * bw + bx) as usize) * bb;
                match format {
                    TexFormat::Dxt1 => out[off..off + 8].copy_from_slice(&encode_dxt1_block(&block)),
                    TexFormat::Dxt3 => out[off..off + 16].copy_from_slice(&encode_dxt3_block(&block)),
                    _ => unreachable!(),
                }
            }
        }
        out
    } else {
        let bpt = format.bytes_per_texel();
        let tiles_per_row = width.div_ceil(4);
        let rows_of_tiles = height.div_ceil(4);
        let mut out = vec![0u8; (tiles_per_row * rows_of_tiles * 16) as usize * bpt as usize];
        let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
        for y in 0..height {
            for x in 0..width {
                let p = pixels[(y * width + x) as usize];
                let off = tiled_offset(x, y, width, bpt) as usize;
                match format {
                    TexFormat::Rgba8 => {
                        out[off] = q(p.x);
                        out[off + 1] = q(p.y);
                        out[off + 2] = q(p.z);
                        out[off + 3] = q(p.w);
                    }
                    TexFormat::Rgb8 => {
                        out[off] = q(p.x);
                        out[off + 1] = q(p.y);
                        out[off + 2] = q(p.z);
                    }
                    TexFormat::L8 => out[off] = q(p.x),
                    TexFormat::A8 => out[off] = q(p.w),
                    _ => unreachable!(),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(w: u32, h: u32) -> Vec<Vec4> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                if (x / 2 + y / 2) % 2 == 0 {
                    Vec4::ONE
                } else {
                    Vec4::new(0.0, 0.0, 0.0, 1.0)
                }
            })
            .collect()
    }

    fn solid(w: u32, h: u32, c: Vec4) -> Vec<Vec4> {
        vec![c; (w * h) as usize]
    }

    #[test]
    fn wrap_modes() {
        assert_eq!(WrapMode::Repeat.wrap(-1, 4), 3);
        assert_eq!(WrapMode::Repeat.wrap(5, 4), 1);
        assert_eq!(WrapMode::Clamp.wrap(-3, 4), 0);
        assert_eq!(WrapMode::Clamp.wrap(9, 4), 3);
        assert_eq!(WrapMode::Mirror.wrap(4, 4), 3);
        assert_eq!(WrapMode::Mirror.wrap(-1, 4), 0);
        assert_eq!(WrapMode::Mirror.wrap(7, 4), 0);
    }

    #[test]
    fn mip_level_math() {
        assert_eq!(full_mip_levels(256, 256, 1), 9);
        assert_eq!(full_mip_levels(256, 64, 1), 9);
        assert_eq!(full_mip_levels(1, 1, 1), 1);
        let desc = TextureDesc::new_2d(8, 4, TexFormat::Rgba8, 0).with_full_mips();
        assert_eq!(desc.mip_levels, 4);
        assert_eq!(desc.level_dims(0), (8, 4, 1));
        assert_eq!(desc.level_dims(3), (1, 1, 1));
        assert_eq!(desc.level_bytes(0), 8 * 4 * 4);
        assert_eq!(desc.level_offset(1), 128);
    }

    #[test]
    fn point_sampling_reads_exact_texel() {
        let w = 8;
        let h = 8;
        let pixels: Vec<Vec4> = (0..w * h)
            .map(|i| Vec4::new((i % w) as f32 / 255.0, (i / w) as f32 / 255.0, 0.0, 1.0))
            .collect();
        let bytes = encode_tiled(TexFormat::Rgba8, w, h, &pixels);
        let mut desc = TextureDesc::new_2d(w, h, TexFormat::Rgba8, 0);
        desc.min_filter = TexFilter::Nearest;
        let emu = TextureEmulator::new();
        let mut src: &[u8] = &bytes;
        // Sample the center of texel (3, 5).
        let coord = Vec4::new((3.0 + 0.5) / 8.0, (5.0 + 0.5) / 8.0, 0.0, 1.0);
        let r = emu.sample_lod(&desc, &mut src, coord, 0.0, 1.0, (0.0, 0.0));
        assert!((r.value.x * 255.0 - 3.0).abs() < 0.5, "{:?}", r.value);
        assert!((r.value.y * 255.0 - 5.0).abs() < 0.5, "{:?}", r.value);
        assert_eq!(r.accesses.len(), 1);
    }

    #[test]
    fn bilinear_interpolates_midpoint() {
        let pixels = vec![
            Vec4::new(0.0, 0.0, 0.0, 1.0),
            Vec4::new(1.0, 1.0, 1.0, 1.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
            Vec4::new(1.0, 1.0, 1.0, 1.0),
        ];
        let bytes = encode_tiled(TexFormat::Rgba8, 2, 2, &pixels);
        let desc = TextureDesc::new_2d(2, 2, TexFormat::Rgba8, 0);
        let emu = TextureEmulator::new();
        let mut src: &[u8] = &bytes;
        let r = emu.sample_lod(&desc, &mut src, Vec4::new(0.5, 0.5, 0.0, 1.0), 0.0, 1.0, (0.0, 0.0));
        assert!((r.value.x - 0.5).abs() < 0.01, "{:?}", r.value);
        assert_eq!(r.accesses.len(), 4, "bilinear reads 4 texels");
        assert_eq!(r.bilinear_ops, 1);
    }

    #[test]
    fn trilinear_blends_mip_levels() {
        // Level 0 white (4x4), level 1 black (2x2), level 2 black (1x1).
        let mut bytes = encode_tiled(TexFormat::Rgba8, 4, 4, &solid(4, 4, Vec4::ONE));
        bytes.extend(encode_tiled(
            TexFormat::Rgba8,
            2,
            2,
            &solid(2, 2, Vec4::new(0.0, 0.0, 0.0, 1.0)),
        ));
        bytes.extend(encode_tiled(
            TexFormat::Rgba8,
            1,
            1,
            &solid(1, 1, Vec4::new(0.0, 0.0, 0.0, 1.0)),
        ));
        let desc = TextureDesc::new_2d(4, 4, TexFormat::Rgba8, 0).with_full_mips();
        assert_eq!(desc.mip_levels, 3);
        let emu = TextureEmulator::new();
        let mut src: &[u8] = &bytes;
        let r = emu.sample_lod(&desc, &mut src, Vec4::new(0.5, 0.5, 0.0, 1.0), 0.5, 1.0, (0.0, 0.0));
        assert!((r.value.x - 0.5).abs() < 0.05, "lod 0.5 should blend to gray: {:?}", r.value);
        assert_eq!(r.bilinear_ops, 2, "trilinear costs two bilinear ops");
    }

    #[test]
    fn quad_lod_increases_with_minification() {
        let desc = TextureDesc::new_2d(256, 256, TexFormat::Rgba8, 0).with_full_mips();
        let emu = TextureEmulator::new();
        // One texel per pixel: lod 0.
        let step = 1.0 / 256.0;
        let quad = [
            Vec4::new(0.0, 0.0, 0.0, 1.0),
            Vec4::new(step, 0.0, 0.0, 1.0),
            Vec4::new(0.0, step, 0.0, 1.0),
            Vec4::new(step, step, 0.0, 1.0),
        ];
        let (lod, aniso, _) = emu.quad_lod(&desc, &quad);
        assert!(lod.abs() < 0.01, "lod {lod}");
        assert!((aniso - 1.0).abs() < 0.01);
        // Four texels per pixel: lod 2.
        let quad = [
            Vec4::new(0.0, 0.0, 0.0, 1.0),
            Vec4::new(4.0 * step, 0.0, 0.0, 1.0),
            Vec4::new(0.0, 4.0 * step, 0.0, 1.0),
            Vec4::new(4.0 * step, 4.0 * step, 0.0, 1.0),
        ];
        let (lod, _, _) = emu.quad_lod(&desc, &quad);
        assert!((lod - 2.0).abs() < 0.01, "lod {lod}");
    }

    #[test]
    fn anisotropic_detects_stretched_footprint() {
        let mut desc = TextureDesc::new_2d(256, 256, TexFormat::Rgba8, 0).with_full_mips();
        desc.max_aniso = 8;
        let emu = TextureEmulator::new();
        let step = 1.0 / 256.0;
        // 8:1 stretched footprint along x.
        let quad = [
            Vec4::new(0.0, 0.0, 0.0, 1.0),
            Vec4::new(8.0 * step, 0.0, 0.0, 1.0),
            Vec4::new(0.0, step, 0.0, 1.0),
            Vec4::new(8.0 * step, step, 0.0, 1.0),
        ];
        let (lod, aniso, _) = emu.quad_lod(&desc, &quad);
        assert!((aniso - 8.0).abs() < 0.01, "aniso {aniso}");
        assert!(lod.abs() < 0.01, "aniso keeps lod at minor axis: {lod}");
    }

    #[test]
    fn aniso_sampling_costs_more_bilinear_ops() {
        let mut desc = TextureDesc::new_2d(64, 64, TexFormat::Rgba8, 0);
        desc.max_aniso = 4;
        let bytes = encode_tiled(TexFormat::Rgba8, 64, 64, &checkerboard(64, 64));
        let emu = TextureEmulator::new();
        let mut src: &[u8] = &bytes;
        let r = emu.sample_lod(
            &desc,
            &mut src,
            Vec4::new(0.5, 0.5, 0.0, 1.0),
            0.0,
            4.0,
            (4.0 / 64.0, 0.0),
        );
        assert_eq!(r.bilinear_ops, 4);
        assert_eq!(r.accesses.len(), 16);
    }

    #[test]
    fn dxt1_round_trip_solid_block() {
        let block_px = [Vec4::new(1.0, 0.0, 0.0, 1.0); 16];
        let enc = encode_dxt1_block(&block_px);
        for by in 0..4 {
            for bx in 0..4 {
                let v = decode_dxt1_texel(&enc, bx, by);
                assert!((v.x - 1.0).abs() < 0.05 && v.y < 0.05 && v.z < 0.05, "{v:?}");
            }
        }
    }

    #[test]
    fn dxt1_two_color_block() {
        let mut px = [Vec4::new(0.0, 0.0, 0.0, 1.0); 16];
        for p in px.iter_mut().skip(8) {
            *p = Vec4::ONE;
        }
        let enc = encode_dxt1_block(&px);
        let dark = decode_dxt1_texel(&enc, 0, 0);
        let light = decode_dxt1_texel(&enc, 0, 3);
        assert!(dark.x < 0.1, "{dark:?}");
        assert!(light.x > 0.9, "{light:?}");
    }

    #[test]
    fn dxt3_preserves_alpha_exactly_at_4bit() {
        let mut px = [Vec4::new(0.5, 0.5, 0.5, 0.0); 16];
        for (i, p) in px.iter_mut().enumerate() {
            p.w = i as f32 / 15.0;
        }
        let enc = encode_dxt3_block(&px);
        for i in 0..16 {
            let v = decode_dxt3_texel(&enc, (i % 4) as u32, (i / 4) as u32);
            assert!((v.w - i as f32 / 15.0).abs() < 1e-6, "alpha {i}: {v:?}");
        }
    }

    #[test]
    fn compressed_texture_sampling() {
        let pixels = solid(8, 8, Vec4::new(0.0, 1.0, 0.0, 1.0));
        let bytes = encode_tiled(TexFormat::Dxt1, 8, 8, &pixels);
        assert_eq!(bytes.len(), 4 * 8, "8x8 dxt1 = 4 blocks");
        let desc = TextureDesc::new_2d(8, 8, TexFormat::Dxt1, 0);
        let emu = TextureEmulator::new();
        let mut src: &[u8] = &bytes;
        let r = emu.sample_lod(&desc, &mut src, Vec4::new(0.5, 0.5, 0.0, 1.0), 0.0, 1.0, (0.0, 0.0));
        assert!(r.value.y > 0.9, "{:?}", r.value);
        // All four bilinear texels are in compressed blocks.
        assert!(r.accesses.iter().all(|(_, len)| *len == 8));
    }

    #[test]
    fn cube_face_selection() {
        assert_eq!(cube_face(Vec4::new(1.0, 0.2, 0.2, 0.0)).0, 0);
        assert_eq!(cube_face(Vec4::new(-1.0, 0.2, 0.2, 0.0)).0, 1);
        assert_eq!(cube_face(Vec4::new(0.1, 1.0, 0.2, 0.0)).0, 2);
        assert_eq!(cube_face(Vec4::new(0.1, -1.0, 0.2, 0.0)).0, 3);
        assert_eq!(cube_face(Vec4::new(0.1, 0.2, 1.0, 0.0)).0, 4);
        assert_eq!(cube_face(Vec4::new(0.1, 0.2, -1.0, 0.0)).0, 5);
        // Face coords land in [0,1].
        let (_, c) = cube_face(Vec4::new(1.0, 0.5, -0.5, 0.0));
        assert!((0.0..=1.0).contains(&c.x) && (0.0..=1.0).contains(&c.y));
    }

    #[test]
    fn tiled_offset_is_dense_and_unique() {
        let w = 8;
        let h = 8;
        let mut seen = std::collections::HashSet::new();
        for y in 0..h {
            for x in 0..w {
                let off = tiled_offset(x, y, w, 4);
                assert!(off < (w * h * 4) as u64);
                assert!(seen.insert(off), "duplicate offset for ({x},{y})");
            }
        }
    }

    #[test]
    fn total_bytes_accounts_for_cube_faces() {
        let mut desc = TextureDesc::new_2d(4, 4, TexFormat::Rgba8, 0);
        desc.target = TexTarget::Cube;
        assert_eq!(desc.total_bytes(), 6 * 4 * 4 * 4);
    }

    #[test]
    fn volume_texture_slice_selection() {
        // 4x4x4 volume: each slice a different grey level.
        let mut bytes = Vec::new();
        for k in 0..4u32 {
            let v = (k * 60 + 20) as f32 / 255.0;
            bytes.extend(encode_tiled(
                TexFormat::Rgba8,
                4,
                4,
                &solid(4, 4, Vec4::new(v, v, v, 1.0)),
            ));
        }
        let mut desc = TextureDesc::new_2d(4, 4, TexFormat::Rgba8, 0);
        desc.target = TexTarget::Tex3D;
        desc.depth = 4;
        desc.min_filter = TexFilter::Bilinear;
        let emu = TextureEmulator::new();
        let mut src: &[u8] = &bytes;
        for k in 0..4u32 {
            let r = (k * 60 + 20) as f32 / 255.0;
            let coord = Vec4::new(0.5, 0.5, (k as f32 + 0.5) / 4.0, 1.0);
            let out = emu.sample_lod(&desc, &mut src, coord, 0.0, 1.0, (0.0, 0.0));
            assert!((out.value.x - r).abs() < 0.01, "slice {k}: {:?}", out.value);
        }
    }

    #[test]
    fn render_target_layout_addresses_fb_tiles() {
        // An FbTiled8 texture's texel (x, y) must live at the same offset
        // as the framebuffer pixel (x, y).
        let desc = TextureDesc::new_render_target(16, 16, 0);
        assert_eq!(desc.layout, TexLayout::FbTiled8);
        assert_eq!(desc.level_bytes(0), 2 * 2 * 64 * 4);
        assert_eq!(fb_tiled_offset(0, 0, 16, 4), 0);
        assert_eq!(fb_tiled_offset(8, 0, 16, 4), 256, "second 8x8 tile");
        assert_eq!(fb_tiled_offset(1, 1, 16, 4), (8 + 1) as u64 * 4);
    }

    #[test]
    fn small_mip_levels_are_tile_padded_consistently() {
        // Regression: level_bytes must match encode_tiled's 4x4-tile
        // padding or per-level offsets diverge for 2x2/1x1 mips.
        let mut bytes = encode_tiled(TexFormat::Rgba8, 8, 8, &solid(8, 8, Vec4::ONE));
        bytes.extend(encode_tiled(TexFormat::Rgba8, 4, 4, &solid(4, 4, Vec4::new(0.0, 1.0, 0.0, 1.0))));
        bytes.extend(encode_tiled(TexFormat::Rgba8, 2, 2, &solid(2, 2, Vec4::new(0.0, 0.0, 1.0, 1.0))));
        bytes.extend(encode_tiled(TexFormat::Rgba8, 1, 1, &solid(1, 1, Vec4::new(1.0, 0.0, 0.0, 1.0))));
        let desc = TextureDesc::new_2d(8, 8, TexFormat::Rgba8, 0).with_full_mips();
        assert_eq!(desc.total_bytes() as usize, bytes.len(), "layout must match the encoder");
        let emu = TextureEmulator::new();
        let mut src: &[u8] = &bytes;
        // Clamp at each level: lod 2 -> pure blue 2x2 level, lod 3 -> red.
        let at = |src: &mut &[u8], lod: f32| {
            emu.sample_lod(&desc, src, Vec4::new(0.5, 0.5, 0.0, 1.0), lod, 1.0, (0.0, 0.0)).value
        };
        let v2 = at(&mut src, 2.0);
        assert!(v2.z > 0.9 && v2.x < 0.1, "2x2 level must be blue: {v2:?}");
        let v3 = at(&mut src, 3.0);
        assert!(v3.x > 0.9 && v3.z < 0.1, "1x1 level must be red: {v3:?}");
    }

    #[test]
    fn mipmapped_3d_texture_slices_per_level() {
        // Regression: the slice index must come from the sampled level's
        // depth, not the base level's.
        let mut bytes = Vec::new();
        // Level 0: 4x4x4, slices alternating dark/bright.
        for k in 0..4u32 {
            let v = if k % 2 == 0 { 0.2 } else { 0.8 };
            bytes.extend(encode_tiled(TexFormat::Rgba8, 4, 4, &solid(4, 4, Vec4::new(v, v, v, 1.0))));
        }
        // Level 1: 2x2x2 mid-grey; level 2: 1x1x1 white.
        for _ in 0..2 {
            bytes.extend(encode_tiled(TexFormat::Rgba8, 2, 2, &solid(2, 2, Vec4::splat(0.5))));
        }
        bytes.extend(encode_tiled(TexFormat::Rgba8, 1, 1, &solid(1, 1, Vec4::ONE)));
        let mut desc = TextureDesc::new_2d(4, 4, TexFormat::Rgba8, 0);
        desc.target = TexTarget::Tex3D;
        desc.depth = 4;
        desc = desc.with_full_mips();
        let emu = TextureEmulator::new();
        let mut src: &[u8] = &bytes;
        // z = 0.9 selects base slice 3 but level-1 slice 1: must not read
        // out of bounds and must return the level's content.
        let out = emu.sample_lod(&desc, &mut src, Vec4::new(0.5, 0.5, 0.9, 1.0), 1.0, 1.0, (0.0, 0.0));
        assert!((out.value.x - 0.5).abs() < 0.05, "level-1 grey expected: {:?}", out.value);
        let out = emu.sample_lod(&desc, &mut src, Vec4::new(0.5, 0.5, 0.9, 1.0), 2.0, 1.0, (0.0, 0.0));
        assert!(out.value.x > 0.95, "level-2 white expected: {:?}", out.value);
    }
}
