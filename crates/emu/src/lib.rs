//! # attila-emu — functional emulation libraries
//!
//! The emulator half of the ATTILA simulator (Moya et al., ISPASS 2006,
//! §3). ATTILA is *execution driven*: real data travels through the timing
//! model's signals, and the timing boxes call into these functional
//! libraries to actually compute rendering results. Keeping emulation in
//! separate libraries keeps emulation bugs apart from simulation bugs and
//! lets several alternative timing microarchitectures share one functional
//! model.
//!
//! The paper's four emulator classes map to these modules:
//!
//! | Paper class | Module |
//! |---|---|
//! | `ShaderEmulator` | [`shader`] (with the ISA in [`isa`] and an assembler in [`asm`]) |
//! | `TextureEmulator` | [`texture`] |
//! | `FragmentOperatorEmulator` | [`fragops`] |
//! | `ClipperEmulator` | [`clipper`] |
//!
//! plus the rasterization mathematics ([`raster`]: 2D-homogeneous triangle
//! setup, recursive and tiled traversal, perspective-correct
//! interpolation) and the vector types everything computes with
//! ([`vector`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asm;
pub mod clipper;
pub mod fragops;
pub mod isa;
pub mod raster;
pub mod shader;
pub mod texture;
pub mod vector;

pub use clipper::ClipperEmulator;
pub use isa::{Instruction, Opcode, Program, ShaderTarget};
pub use shader::{ShaderEmulator, StepResult, TextureRequest, ThreadId};
pub use texture::{TexFormat, TextureDesc, TextureEmulator};
pub use vector::{Mat4, Vec4};
