//! Rasterization mathematics: triangle setup, traversal, interpolation.
//!
//! ATTILA's rasterizer implements the **2D homogeneous** algorithm of Olano
//! and Greer (paper ref \[14\]): edge equations are derived from the adjoint
//! of the 3×3 matrix of homogeneous vertex positions, which removes the
//! need for geometric clipping — triangles crossing the near plane
//! rasterize correctly without being cut. Triangle Setup computes the three
//! half-plane edge equations and a depth (`z/w`) interpolation equation;
//! the Fragment Generator then traverses the triangle's projected area.
//! Edge equation values double as barycentric coordinates for
//! perspective-correct attribute interpolation (paper §2.2, ref \[5\]).
//!
//! Two traversal algorithms are provided, as in ATTILA: a tile-by-tile
//! scanner in the style of Neon (ref \[16\]) and the recursive-descent
//! rasterizer described by McCool (ref \[15\], the simulator's default).

use crate::vector::Vec4;

/// A render-target viewport: maps NDC to pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Viewport {
    /// Left edge in pixels.
    pub x: u32,
    /// Bottom edge in pixels.
    pub y: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Viewport {
    /// A viewport at the origin.
    pub fn new(width: u32, height: u32) -> Self {
        Viewport { x: 0, y: 0, width, height }
    }
}

/// Result of triangle setup: everything the fragment generator and
/// interpolator need.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupTriangle {
    /// Edge equation coefficients `[a, b, c]` for each of the 3 edges;
    /// `e_i(x, y) = a x + b y + c`, positive inside after normalization.
    pub edges: [[f32; 3]; 3],
    /// Depth plane `[a, b, c]`: `z(x, y) = a x + b y + c` in `[0, 1]`
    /// (window depth), linear in screen space.
    pub z_plane: [f32; 3],
    /// Conservative pixel bounding box `(x0, y0, x1, y1)`, inclusive.
    pub bbox: (u32, u32, u32, u32),
    /// `true` if the triangle is front facing (counter-clockwise in window
    /// space).
    pub front_facing: bool,
    /// Original clip-space `w` of each vertex (used by the interpolator's
    /// tests and for debugging).
    pub vertex_w: [f32; 3],
}

/// Evaluated edge values at a sample point — the fragment's "barycentric"
/// payload travelling down the ATTILA pipeline.
pub type EdgeValues = [f32; 3];

/// Performs triangle setup in 2D homogeneous coordinates.
///
/// `clip` holds the three clip-space positions `(x, y, z, w)` straight out
/// of the vertex shader. Returns `None` for degenerate (zero-area)
/// triangles.
///
/// # Examples
///
/// ```
/// use attila_emu::raster::{setup_triangle, Viewport};
/// use attila_emu::Vec4;
///
/// let vp = Viewport::new(64, 64);
/// let tri = setup_triangle(
///     &[
///         Vec4::new(-1.0, -1.0, 0.0, 1.0),
///         Vec4::new(1.0, -1.0, 0.0, 1.0),
///         Vec4::new(-1.0, 1.0, 0.0, 1.0),
///     ],
///     vp,
/// )
/// .expect("not degenerate");
/// assert!(tri.front_facing);
/// assert!(tri.inside(10.5, 10.5));
/// assert!(!tri.inside(60.5, 60.5));
/// ```
pub fn setup_triangle(clip: &[Vec4; 3], vp: Viewport) -> Option<SetupTriangle> {
    // Map homogeneous clip coords to homogeneous *window* coords without
    // dividing by w: X = (x/w * 0.5 + 0.5) * width + vx  (all times w).
    let half_w = vp.width as f32 * 0.5;
    let half_h = vp.height as f32 * 0.5;
    let px = |v: &Vec4| {
        [
            v.x * half_w + v.w * (half_w + vp.x as f32),
            v.y * half_h + v.w * (half_h + vp.y as f32),
            v.w,
        ]
    };
    let p: [[f32; 3]; 3] = [px(&clip[0]), px(&clip[1]), px(&clip[2])];

    // adj(M) where rows of M are the homogeneous window positions.
    // Column i of the adjoint is the edge equation opposite... in fact the
    // i-th *row* of adj(M) here is the cross product of the other two
    // vertex rows, giving edge equation e_i with e_i(vertex_i) = det(M).
    let cross = |a: &[f32; 3], b: &[f32; 3]| {
        [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
    };
    let mut e0 = cross(&p[1], &p[2]);
    let mut e1 = cross(&p[2], &p[0]);
    let mut e2 = cross(&p[0], &p[1]);
    let det = p[0][0] * e0[0] + p[0][1] * e0[1] + p[0][2] * e0[2];
    if det == 0.0 {
        return None;
    }
    let front_facing = det > 0.0;
    // Normalize so "inside" is all-edges-nonnegative regardless of facing.
    let flip = if det > 0.0 { 1.0 } else { -1.0 };
    for e in [&mut e0, &mut e1, &mut e2] {
        for c in e.iter_mut() {
            *c *= flip;
        }
    }
    let det_n = det * flip;

    // Depth plane: z_ndc(x,y) = Σ e_i z_i / det; window z = z_ndc*0.5+0.5.
    let zs = [clip[0].z, clip[1].z, clip[2].z];
    let mut z_plane = [0.0f32; 3];
    for c in 0..3 {
        z_plane[c] = (e0[c] * zs[0] + e1[c] * zs[1] + e2[c] * zs[2]) / det_n * 0.5;
    }
    // Σ e_i z_i / det is NDC z (z/w); window z = 0.5*z_ndc + 0.5, so the
    // 0.5 scale is folded above and the bias lands on the constant term.
    z_plane[2] += 0.5;

    // Bounding box: project vertices with positive w; if any vertex has
    // w <= 0, fall back to the full viewport (the paper divides by w
    // "except for triangles with w = 0" and clamps).
    let mut bbox = (vp.x, vp.y, vp.x + vp.width - 1, vp.y + vp.height - 1);
    if clip.iter().all(|v| v.w > 0.0) {
        let (mut x0, mut y0, mut x1, mut y1) = (f32::MAX, f32::MAX, f32::MIN, f32::MIN);
        for row in &p {
            let sx = row[0] / row[2];
            let sy = row[1] / row[2];
            x0 = x0.min(sx);
            y0 = y0.min(sy);
            x1 = x1.max(sx);
            y1 = y1.max(sy);
        }
        let clampx = |v: f32| (v.max(vp.x as f32) as u32).min(vp.x + vp.width - 1);
        let clampy = |v: f32| (v.max(vp.y as f32) as u32).min(vp.y + vp.height - 1);
        bbox = (clampx(x0.floor()), clampy(y0.floor()), clampx(x1.ceil()), clampy(y1.ceil()));
    }

    Some(SetupTriangle {
        edges: [e0, e1, e2],
        z_plane,
        bbox,
        front_facing,
        vertex_w: [clip[0].w, clip[1].w, clip[2].w],
    })
}

impl SetupTriangle {
    /// Evaluates the three edge equations at pixel center `(x, y)` (pass
    /// `px + 0.5` style coordinates).
    pub fn edge_values(&self, x: f32, y: f32) -> EdgeValues {
        [
            self.edges[0][0] * x + self.edges[0][1] * y + self.edges[0][2],
            self.edges[1][0] * x + self.edges[1][1] * y + self.edges[1][2],
            self.edges[2][0] * x + self.edges[2][1] * y + self.edges[2][2],
        ]
    }

    /// Whether the sample point is inside the triangle, applying the
    /// top-left fill rule on shared edges so adjacent triangles never
    /// double-shade a pixel.
    pub fn inside(&self, x: f32, y: f32) -> bool {
        let e = self.edge_values(x, y);
        (0..3).all(|i| {
            if e[i] > 0.0 {
                true
            } else if e[i] == 0.0 {
                // Top-left rule: a left edge has a > 0; a top edge is
                // horizontal (a == 0) with b < 0 in a y-down raster; our y
                // grows upward, so top edges have b > 0.
                let a = self.edges[i][0];
                let b = self.edges[i][1];
                a > 0.0 || (a == 0.0 && b > 0.0)
            } else {
                false
            }
        })
    }

    /// Window-space depth in `[0, 1]` at the sample point (linear — no
    /// division; this is the `z/w` equation Triangle Setup produces).
    pub fn depth(&self, x: f32, y: f32) -> f32 {
        self.z_plane[0] * x + self.z_plane[1] * y + self.z_plane[2]
    }

    /// Perspective-correct interpolation of per-vertex attributes using
    /// edge values as homogeneous barycentrics: `u = Σ e_i u_i / Σ e_i`.
    pub fn interpolate(&self, e: EdgeValues, attrs: &[Vec4; 3]) -> Vec4 {
        let sum = e[0] + e[1] + e[2];
        if sum == 0.0 {
            return attrs[0];
        }
        (attrs[0] * e[0] + attrs[1] * e[1] + attrs[2] * e[2]) / sum
    }

    /// Conservative tile test: returns `false` if the aligned `size`×`size`
    /// pixel tile at `(tx, ty)` is certainly outside the triangle.
    pub fn tile_may_overlap(&self, tx: u32, ty: u32, size: u32) -> bool {
        let x0 = tx as f32;
        let y0 = ty as f32;
        let x1 = (tx + size) as f32;
        let y1 = (ty + size) as f32;
        for edge in &self.edges {
            // Max of the linear function over the tile corners.
            let mx = if edge[0] > 0.0 { x1 } else { x0 };
            let my = if edge[1] > 0.0 { y1 } else { y0 };
            if edge[0] * mx + edge[1] * my + edge[2] < 0.0 {
                return false;
            }
        }
        true
    }
}

/// A generated fragment-to-be: position, edge values, depth and cull flag —
/// the attributes the paper lists for Fragment Generator output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RasterFragment {
    /// Pixel x coordinate.
    pub x: u32,
    /// Pixel y coordinate.
    pub y: u32,
    /// Edge equation values at the pixel center (barycentric payload).
    pub edges: EdgeValues,
    /// Window depth in `[0, 1]`.
    pub depth: f32,
    /// Set when the pixel center is outside the triangle or viewport; such
    /// fragments still travel in their quad until culled.
    pub culled: bool,
}

/// Generates the fragment for pixel `(x, y)`, marking coverage.
pub fn gen_fragment(tri: &SetupTriangle, x: u32, y: u32) -> RasterFragment {
    let cx = x as f32 + 0.5;
    let cy = y as f32 + 0.5;
    RasterFragment {
        x,
        y,
        edges: tri.edge_values(cx, cy),
        depth: tri.depth(cx, cy),
        culled: !tri.inside(cx, cy),
    }
}

/// Traversal algorithm selector (an ATTILA config parameter; the recursive
/// algorithm is the simulator's default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraversalAlgorithm {
    /// McCool-style recursive descent over power-of-two tiles.
    #[default]
    Recursive,
    /// Neon-style linear scan of tiles over the bounding box.
    TileScan,
}

/// Enumerates the `tile`×`tile` aligned tiles that may contain covered
/// pixels, in the order the selected traversal visits them.
pub fn covered_tiles(
    tri: &SetupTriangle,
    tile: u32,
    algorithm: TraversalAlgorithm,
) -> Vec<(u32, u32)> {
    assert!(tile.is_power_of_two(), "tile size must be a power of two");
    match algorithm {
        TraversalAlgorithm::TileScan => {
            let (x0, y0, x1, y1) = tri.bbox;
            let mut out = Vec::new();
            let ty0 = y0 / tile;
            let ty1 = y1 / tile;
            let tx0 = x0 / tile;
            let tx1 = x1 / tile;
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    if tri.tile_may_overlap(tx * tile, ty * tile, tile) {
                        out.push((tx * tile, ty * tile));
                    }
                }
            }
            out
        }
        TraversalAlgorithm::Recursive => {
            let (x0, y0, x1, y1) = tri.bbox;
            // Smallest power-of-two square covering the bbox, aligned down.
            let span = (x1 - x0 + 1).max(y1 - y0 + 1).max(tile).next_power_of_two();
            let bx = x0 / span * span;
            let by = y0 / span * span;
            let mut out = Vec::new();
            // The square may not cover the bbox after alignment; recurse
            // over the (at most 2×2) aligned squares that do.
            let mut sy = by;
            while sy <= y1 {
                let mut sx = bx;
                while sx <= x1 {
                    recurse_tiles(tri, sx, sy, span, tile, &mut out);
                    sx += span;
                }
                sy += span;
            }
            out
        }
    }
}

fn recurse_tiles(
    tri: &SetupTriangle,
    x: u32,
    y: u32,
    size: u32,
    tile: u32,
    out: &mut Vec<(u32, u32)>,
) {
    let (bx0, by0, bx1, by1) = tri.bbox;
    if x > bx1 || y > by1 || x + size <= bx0 || y + size <= by0 {
        return;
    }
    if !tri.tile_may_overlap(x, y, size) {
        return;
    }
    if size == tile {
        out.push((x, y));
        return;
    }
    let half = size / 2;
    recurse_tiles(tri, x, y, half, tile, out);
    recurse_tiles(tri, x + half, y, half, tile, out);
    recurse_tiles(tri, x, y + half, half, tile, out);
    recurse_tiles(tri, x + half, y + half, half, tile, out);
}

/// Rasterizes an entire triangle into covered fragments — the reference
/// path used by the golden-model renderer and by tests that validate the
/// cycle-level Fragment Generator.
pub fn rasterize_reference(tri: &SetupTriangle, vp: Viewport) -> Vec<RasterFragment> {
    let mut out = Vec::new();
    let (x0, y0, x1, y1) = tri.bbox;
    for y in y0..=y1 {
        for x in x0..=x1 {
            if x >= vp.x && x < vp.x + vp.width && y >= vp.y && y < vp.y + vp.height {
                let f = gen_fragment(tri, x, y);
                if !f.culled {
                    out.push(f);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_screen_tri(vp: Viewport) -> SetupTriangle {
        setup_triangle(
            &[
                Vec4::new(-1.0, -1.0, 0.0, 1.0),
                Vec4::new(3.0, -1.0, 0.0, 1.0),
                Vec4::new(-1.0, 3.0, 0.0, 1.0),
            ],
            vp,
        )
        .unwrap()
    }

    #[test]
    fn setup_rejects_degenerate() {
        let vp = Viewport::new(16, 16);
        let v = Vec4::new(0.0, 0.0, 0.0, 1.0);
        assert!(setup_triangle(&[v, v, v], vp).is_none());
        // Collinear.
        assert!(setup_triangle(
            &[
                Vec4::new(-1.0, -1.0, 0.0, 1.0),
                Vec4::new(0.0, 0.0, 0.0, 1.0),
                Vec4::new(1.0, 1.0, 0.0, 1.0),
            ],
            vp
        )
        .is_none());
    }

    #[test]
    fn facing_depends_on_winding() {
        let vp = Viewport::new(16, 16);
        let a = Vec4::new(-0.5, -0.5, 0.0, 1.0);
        let b = Vec4::new(0.5, -0.5, 0.0, 1.0);
        let c = Vec4::new(0.0, 0.5, 0.0, 1.0);
        assert!(setup_triangle(&[a, b, c], vp).unwrap().front_facing);
        assert!(!setup_triangle(&[a, c, b], vp).unwrap().front_facing);
    }

    #[test]
    fn full_screen_triangle_covers_everything() {
        let vp = Viewport::new(32, 32);
        let tri = full_screen_tri(vp);
        let frags = rasterize_reference(&tri, vp);
        assert_eq!(frags.len(), 32 * 32);
    }

    #[test]
    fn half_screen_triangle_covers_half() {
        let vp = Viewport::new(64, 64);
        let tri = setup_triangle(
            &[
                Vec4::new(-1.0, -1.0, 0.0, 1.0),
                Vec4::new(1.0, -1.0, 0.0, 1.0),
                Vec4::new(-1.0, 1.0, 0.0, 1.0),
            ],
            vp,
        )
        .unwrap();
        let frags = rasterize_reference(&tri, vp);
        // Pixels strictly below the diagonal: the 63 diagonal centers are
        // excluded by the fill rule for this winding (they belong to the
        // other half of the quad — see adjacent_triangles_share_no_pixels).
        assert_eq!(frags.len(), (1..=63).sum::<usize>());
    }

    #[test]
    fn adjacent_triangles_share_no_pixels() {
        // A quad split along the diagonal: every covered pixel belongs to
        // exactly one triangle (top-left fill rule).
        let vp = Viewport::new(16, 16);
        let bl = Vec4::new(-1.0, -1.0, 0.0, 1.0);
        let br = Vec4::new(1.0, -1.0, 0.0, 1.0);
        let tl = Vec4::new(-1.0, 1.0, 0.0, 1.0);
        let tr = Vec4::new(1.0, 1.0, 0.0, 1.0);
        let t1 = setup_triangle(&[bl, br, tl], vp).unwrap();
        let t2 = setup_triangle(&[br, tr, tl], vp).unwrap();
        let mut seen = std::collections::HashSet::new();
        for f in rasterize_reference(&t1, vp).iter().chain(rasterize_reference(&t2, vp).iter()) {
            assert!(seen.insert((f.x, f.y)), "pixel ({}, {}) shaded twice", f.x, f.y);
        }
        assert_eq!(seen.len(), 16 * 16, "the quad covers every pixel exactly once");
    }

    #[test]
    fn depth_is_interpolated_linearly_in_screen_space() {
        let vp = Viewport::new(16, 16);
        let tri = setup_triangle(
            &[
                Vec4::new(-1.0, -1.0, -1.0, 1.0), // near
                Vec4::new(3.0, -1.0, 1.0, 1.0),   // far
                Vec4::new(-1.0, 3.0, -1.0, 1.0),
            ],
            vp,
        )
        .unwrap();
        // NDC z=-1 -> window 0; z=1 -> window 1.
        let z_left = tri.depth(0.0, 0.0);
        let z_mid = tri.depth(16.0, 0.0);
        assert!((z_left - 0.0).abs() < 1e-4, "left depth {z_left}");
        assert!((z_mid - 0.5).abs() < 1e-4, "mid depth {z_mid}");
    }

    #[test]
    fn interpolation_is_perspective_correct() {
        let vp = Viewport::new(16, 16);
        // Right vertex twice as far (w=2). A naive screen-space lerp of the
        // attribute at the screen midpoint would give 0.5; perspective
        // correct gives 1/3-weighted toward the near vertex... precisely
        // u_mid = (u0/w0 + u1/w1)/(1/w0 + 1/w1) at equal screen distance.
        let tri = setup_triangle(
            &[
                Vec4::new(-1.0, -1.0, 0.0, 1.0),
                Vec4::new(2.0, -1.0, 0.0, 2.0),
                Vec4::new(-1.0, 3.0, 0.0, 1.0),
            ],
            vp,
        )
        .unwrap();
        let attrs = [Vec4::splat(0.0), Vec4::splat(1.0), Vec4::splat(0.0)];
        // Screen midpoint of bottom edge: v0 projects to (0, 0), v1 to (16, 0).
        let e = tri.edge_values(8.0, 0.0);
        let u = tri.interpolate(e, &attrs);
        let expected = (0.0 / 1.0 + 1.0 / 2.0) / (1.0 / 1.0 + 1.0 / 2.0);
        assert!((u.x - expected).abs() < 1e-4, "u {} expected {}", u.x, expected);
        assert!(u.x < 0.5, "perspective pulls toward the near vertex");
    }

    #[test]
    fn near_plane_crossing_triangle_rasterizes() {
        // One vertex behind the eye (w < 0): 2DH must still produce the
        // correct visible region without clipping.
        let vp = Viewport::new(32, 32);
        let tri = setup_triangle(
            &[
                Vec4::new(0.0, 0.5, 0.0, 1.0),
                Vec4::new(-0.5, -0.5, 0.0, 1.0),
                Vec4::new(0.5, -0.5, 0.0, -0.5), // behind the eye
            ],
            vp,
        );
        let tri = tri.expect("still a valid triangle");
        // Bbox falls back to the viewport.
        assert_eq!(tri.bbox, (0, 0, 31, 31));
        let frags = rasterize_reference(&tri, vp);
        assert!(!frags.is_empty(), "the visible part must produce fragments");
    }

    #[test]
    fn tile_overlap_test_is_conservative() {
        let vp = Viewport::new(64, 64);
        let tri = setup_triangle(
            &[
                Vec4::new(-0.5, -0.5, 0.0, 1.0),
                Vec4::new(0.5, -0.5, 0.0, 1.0),
                Vec4::new(0.0, 0.5, 0.0, 1.0),
            ],
            vp,
        )
        .unwrap();
        // Every tile containing a covered pixel must pass the test.
        for f in rasterize_reference(&tri, vp) {
            let tx = f.x / 8 * 8;
            let ty = f.y / 8 * 8;
            assert!(tri.tile_may_overlap(tx, ty, 8), "tile ({tx},{ty}) wrongly rejected");
        }
        // A far-away tile must fail.
        assert!(!tri.tile_may_overlap(56, 56, 8));
    }

    #[test]
    fn traversals_agree_on_covered_tiles() {
        let vp = Viewport::new(128, 128);
        let tri = setup_triangle(
            &[
                Vec4::new(-0.9, -0.8, 0.0, 1.0),
                Vec4::new(0.7, -0.3, 0.0, 1.0),
                Vec4::new(-0.1, 0.9, 0.0, 1.0),
            ],
            vp,
        )
        .unwrap();
        let mut scan = covered_tiles(&tri, 8, TraversalAlgorithm::TileScan);
        let mut rec = covered_tiles(&tri, 8, TraversalAlgorithm::Recursive);
        scan.sort_unstable();
        rec.sort_unstable();
        assert_eq!(scan, rec, "both traversals must visit the same tile set");
        assert!(!scan.is_empty());
    }

    #[test]
    fn recursive_traversal_visits_every_covered_pixel_tile() {
        let vp = Viewport::new(64, 64);
        let tri = setup_triangle(
            &[
                Vec4::new(-1.0, -1.0, 0.0, 1.0),
                Vec4::new(1.0, -0.5, 0.0, 1.0),
                Vec4::new(0.0, 1.0, 0.0, 1.0),
            ],
            vp,
        )
        .unwrap();
        let tiles: std::collections::HashSet<_> =
            covered_tiles(&tri, 8, TraversalAlgorithm::Recursive).into_iter().collect();
        for f in rasterize_reference(&tri, vp) {
            assert!(
                tiles.contains(&(f.x / 8 * 8, f.y / 8 * 8)),
                "pixel ({},{}) in unvisited tile",
                f.x,
                f.y
            );
        }
    }

    #[test]
    fn gen_fragment_marks_outside_pixels_culled() {
        let vp = Viewport::new(16, 16);
        let tri = setup_triangle(
            &[
                Vec4::new(-1.0, -1.0, 0.0, 1.0),
                Vec4::new(0.0, -1.0, 0.0, 1.0),
                Vec4::new(-1.0, 0.0, 0.0, 1.0),
            ],
            vp,
        )
        .unwrap();
        assert!(!gen_fragment(&tri, 1, 1).culled);
        assert!(gen_fragment(&tri, 15, 15).culled);
    }
}
