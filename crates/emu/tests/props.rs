//! Property tests for the functional emulators: assembler round-trip,
//! rasterizer coverage, interpolation, fragment ops and compression.

use proptest::prelude::*;

use attila_emu::asm::{assemble, disassemble};
use attila_emu::fragops::{
    blend, compress_z_block, decompress_z_block, z_stencil_test, BlendEquation, BlendFactor,
    BlendState, CompareFunc, DepthState, StencilOp, StencilState, ZBLOCK_WORDS,
};
use attila_emu::raster::{
    covered_tiles, rasterize_reference, setup_triangle, TraversalAlgorithm, Viewport,
};
use attila_emu::vector::Vec4;

fn arb_vec4(range: f32) -> impl Strategy<Value = Vec4> {
    (
        -range..range,
        -range..range,
        -range..range,
        0.1f32..range,
    )
        .prop_map(|(x, y, z, w)| Vec4::new(x, y, z, w))
}

fn arb_compare() -> impl Strategy<Value = CompareFunc> {
    prop_oneof![
        Just(CompareFunc::Never),
        Just(CompareFunc::Less),
        Just(CompareFunc::Equal),
        Just(CompareFunc::LEqual),
        Just(CompareFunc::Greater),
        Just(CompareFunc::NotEqual),
        Just(CompareFunc::GEqual),
        Just(CompareFunc::Always),
    ]
}

fn arb_stencil_op() -> impl Strategy<Value = StencilOp> {
    prop_oneof![
        Just(StencilOp::Keep),
        Just(StencilOp::Zero),
        Just(StencilOp::Replace),
        Just(StencilOp::Incr),
        Just(StencilOp::IncrWrap),
        Just(StencilOp::Decr),
        Just(StencilOp::DecrWrap),
        Just(StencilOp::Invert),
    ]
}

proptest! {
    /// disassemble(assemble(x)) re-assembles to an identical program for
    /// generated instruction streams.
    #[test]
    fn assembler_round_trip(
        ops in proptest::collection::vec(0usize..18, 1..24),
        temps in 1u8..8,
    ) {
        // Build a plausible program from an opcode palette.
        let palette = [
            "MOV", "ADD", "SUB", "MUL", "MAD", "DP3", "DP4", "MIN", "MAX",
            "SLT", "SGE", "FRC", "FLR", "ABS", "CMP", "LRP", "RCP", "RSQ",
        ];
        let mut src = String::from("!!ATTILAfp1.0\n");
        for (i, &op) in ops.iter().enumerate() {
            let m = palette[op];
            let d = format!("r{}", i as u8 % temps);
            let s0 = format!("r{}", (i as u8 + 1) % temps);
            let line = match m {
                "MOV" | "FRC" | "FLR" | "ABS" => format!("{m} {d}, {s0};\n"),
                "RCP" | "RSQ" => format!("{m} {d}, {s0}.x;\n"),
                "MAD" | "CMP" | "LRP" => format!("{m} {d}, {s0}, c1, -c2.wzyx;\n"),
                _ => format!("{m} {d}, {s0}, c0;\n"),
            };
            src.push_str(&line);
        }
        src.push_str("MOV o0, r0;\nEND;\n");
        let p1 = assemble(&src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// The recursive and tile-scan traversals cover exactly the same
    /// tiles, and every covered pixel lies in a visited tile.
    #[test]
    fn traversals_agree_and_cover(
        v0 in arb_vec4(1.5), v1 in arb_vec4(1.5), v2 in arb_vec4(1.5),
    ) {
        let vp = Viewport::new(64, 64);
        let Some(tri) = setup_triangle(&[v0, v1, v2], vp) else { return Ok(()) };
        let mut scan = covered_tiles(&tri, 8, TraversalAlgorithm::TileScan);
        let mut rec = covered_tiles(&tri, 8, TraversalAlgorithm::Recursive);
        scan.sort_unstable();
        rec.sort_unstable();
        prop_assert_eq!(&scan, &rec);
        let tiles: std::collections::HashSet<_> = scan.into_iter().collect();
        for f in rasterize_reference(&tri, vp) {
            prop_assert!(tiles.contains(&(f.x / 8 * 8, f.y / 8 * 8)));
        }
    }

    /// Perspective-correct interpolation stays within the convex hull of
    /// the vertex attribute values for interior pixels (w > 0 vertices).
    #[test]
    fn interpolation_within_hull(
        v0 in arb_vec4(1.0), v1 in arb_vec4(1.0), v2 in arb_vec4(1.0),
        a0 in -10.0f32..10.0, a1 in -10.0f32..10.0, a2 in -10.0f32..10.0,
    ) {
        let vp = Viewport::new(32, 32);
        let Some(tri) = setup_triangle(&[v0, v1, v2], vp) else { return Ok(()) };
        let attrs = [Vec4::splat(a0), Vec4::splat(a1), Vec4::splat(a2)];
        let lo = a0.min(a1).min(a2) - 1e-3;
        let hi = a0.max(a1).max(a2) + 1e-3;
        for f in rasterize_reference(&tri, vp).iter().take(64) {
            let v = tri.interpolate(f.edges, &attrs);
            prop_assert!(v.x >= lo && v.x <= hi, "{} outside [{lo}, {hi}]", v.x);
        }
    }

    /// Z-block compression is lossless at every achievable level.
    #[test]
    fn z_compression_lossless(
        base in 0u32..0xffff00,
        deltas in proptest::collection::vec(0u32..0x1_0000, ZBLOCK_WORDS),
        stencil in 0u8..255,
    ) {
        let mut words = [0u32; ZBLOCK_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = ((stencil as u32) << 24) | ((base + deltas[i]) & 0x00ff_ffff);
        }
        let c = compress_z_block(&words);
        prop_assert_eq!(decompress_z_block(&c), words);
    }

    /// Blending output is always within [0, 1] and respects the colour
    /// mask exactly.
    #[test]
    fn blend_is_clamped_and_masked(
        sf in 0usize..13, df in 0usize..13, eq in 0usize..5,
        src in arb_vec4(2.0), dst_raw in arb_vec4(1.0),
        mask in proptest::array::uniform4(proptest::bool::ANY),
    ) {
        let factors = [
            BlendFactor::Zero, BlendFactor::One, BlendFactor::SrcColor,
            BlendFactor::OneMinusSrcColor, BlendFactor::DstColor,
            BlendFactor::OneMinusDstColor, BlendFactor::SrcAlpha,
            BlendFactor::OneMinusSrcAlpha, BlendFactor::DstAlpha,
            BlendFactor::OneMinusDstAlpha, BlendFactor::ConstColor,
            BlendFactor::OneMinusConstColor, BlendFactor::SrcAlphaSaturate,
        ];
        let eqs = [
            BlendEquation::Add, BlendEquation::Subtract,
            BlendEquation::ReverseSubtract, BlendEquation::Min, BlendEquation::Max,
        ];
        let dst = dst_raw.saturate();
        let state = BlendState {
            enabled: true,
            src_factor: factors[sf],
            dst_factor: factors[df],
            equation: eqs[eq],
            constant: Vec4::splat(0.5),
            color_mask: mask,
        };
        let out = blend(&state, src, dst);
        for i in 0..4 {
            prop_assert!((0.0..=1.0).contains(&out[i]), "channel {i} = {}", out[i]);
            if !mask[i] {
                prop_assert_eq!(out[i], dst[i], "masked channel must keep dst");
            }
        }
    }

    /// The Z/stencil unit's combined test agrees with a straightforward
    /// reference reimplementation for arbitrary states.
    #[test]
    fn z_stencil_matches_reference(
        frag_z in 0u32..=0x00ff_ffff,
        stored_z in 0u32..=0x00ff_ffff,
        stored_s: u8,
        depth_on: bool, depth_write: bool, stencil_on: bool,
        dfunc in arb_compare(), sfunc in arb_compare(),
        reference: u8,
        sfail in arb_stencil_op(), dpfail in arb_stencil_op(), dppass in arb_stencil_op(),
    ) {
        let depth = DepthState { enabled: depth_on, func: dfunc, write: depth_write };
        let stencil = StencilState {
            enabled: stencil_on, func: sfunc, reference,
            read_mask: 0xff, write_mask: 0xff,
            sfail, dpfail, dppass,
        };
        let stored = ((stored_s as u32) << 24) | stored_z;
        let r = z_stencil_test(depth, stencil, frag_z, stored);

        // Reference semantics.
        let s_pass = !stencil_on || sfunc.test(reference as u32, stored_s as u32);
        let d_pass = !depth_on || dfunc.test(frag_z, stored_z);
        prop_assert_eq!(r.pass, s_pass && d_pass);
        let expect_s = if stencil_on {
            let op = if !s_pass { sfail } else if !d_pass { dpfail } else { dppass };
            op.apply(stored_s, reference)
        } else {
            stored_s
        };
        let expect_z = if s_pass && d_pass && depth_on && depth_write { frag_z } else { stored_z };
        prop_assert_eq!(r.new_word, ((expect_s as u32) << 24) | expect_z);
        prop_assert_eq!(r.written, r.new_word != stored);
    }
}
