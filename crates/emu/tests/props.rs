//! Property tests for the functional emulators: assembler round-trip,
//! rasterizer coverage, interpolation, fragment ops and compression.
//! Driven by the framework's seeded [`TinyRng`] so runs are reproducible
//! offline.

use attila_emu::asm::{assemble, disassemble};
use attila_emu::fragops::{
    blend, compress_z_block, decompress_z_block, z_stencil_test, BlendEquation, BlendFactor,
    BlendState, CompareFunc, DepthState, StencilOp, StencilState, ZBLOCK_WORDS,
};
use attila_emu::raster::{
    covered_tiles, rasterize_reference, setup_triangle, TraversalAlgorithm, Viewport,
};
use attila_emu::vector::Vec4;
use attila_sim::TinyRng;

fn rand_vec4(rng: &mut TinyRng, range: f32) -> Vec4 {
    Vec4::new(
        rng.range_f32(-range, range),
        rng.range_f32(-range, range),
        rng.range_f32(-range, range),
        rng.range_f32(0.1, range),
    )
}

const COMPARES: [CompareFunc; 8] = [
    CompareFunc::Never,
    CompareFunc::Less,
    CompareFunc::Equal,
    CompareFunc::LEqual,
    CompareFunc::Greater,
    CompareFunc::NotEqual,
    CompareFunc::GEqual,
    CompareFunc::Always,
];

const STENCIL_OPS: [StencilOp; 8] = [
    StencilOp::Keep,
    StencilOp::Zero,
    StencilOp::Replace,
    StencilOp::Incr,
    StencilOp::IncrWrap,
    StencilOp::Decr,
    StencilOp::DecrWrap,
    StencilOp::Invert,
];

/// disassemble(assemble(x)) re-assembles to an identical program for
/// generated instruction streams.
#[test]
fn assembler_round_trip() {
    let palette = [
        "MOV", "ADD", "SUB", "MUL", "MAD", "DP3", "DP4", "MIN", "MAX", "SLT", "SGE", "FRC",
        "FLR", "ABS", "CMP", "LRP", "RCP", "RSQ",
    ];
    for seed in 0..48u64 {
        let mut rng = TinyRng::new(seed);
        let temps = rng.range_u32(1, 8) as u8;
        let count = rng.range_u32(1, 24);
        let mut src = String::from("!!ATTILAfp1.0\n");
        for i in 0..count {
            let m = palette[rng.range_u32(0, 18) as usize];
            let d = format!("r{}", i as u8 % temps);
            let s0 = format!("r{}", (i as u8 + 1) % temps);
            let line = match m {
                "MOV" | "FRC" | "FLR" | "ABS" => format!("{m} {d}, {s0};\n"),
                "RCP" | "RSQ" => format!("{m} {d}, {s0}.x;\n"),
                "MAD" | "CMP" | "LRP" => format!("{m} {d}, {s0}, c1, -c2.wzyx;\n"),
                _ => format!("{m} {d}, {s0}, c0;\n"),
            };
            src.push_str(&line);
        }
        src.push_str("MOV o0, r0;\nEND;\n");
        let p1 = assemble(&src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1, p2, "seed {seed}");
    }
}

/// The recursive and tile-scan traversals cover exactly the same tiles,
/// and every covered pixel lies in a visited tile.
#[test]
fn traversals_agree_and_cover() {
    for seed in 0..96u64 {
        let mut rng = TinyRng::new(seed);
        let verts =
            [rand_vec4(&mut rng, 1.5), rand_vec4(&mut rng, 1.5), rand_vec4(&mut rng, 1.5)];
        let vp = Viewport::new(64, 64);
        let Some(tri) = setup_triangle(&verts, vp) else { continue };
        let mut scan = covered_tiles(&tri, 8, TraversalAlgorithm::TileScan);
        let mut rec = covered_tiles(&tri, 8, TraversalAlgorithm::Recursive);
        scan.sort_unstable();
        rec.sort_unstable();
        assert_eq!(&scan, &rec, "seed {seed}");
        let tiles: std::collections::HashSet<_> = scan.into_iter().collect();
        for f in rasterize_reference(&tri, vp) {
            assert!(tiles.contains(&(f.x / 8 * 8, f.y / 8 * 8)), "seed {seed}");
        }
    }
}

/// Perspective-correct interpolation stays within the convex hull of the
/// vertex attribute values for interior pixels (w > 0 vertices).
#[test]
fn interpolation_within_hull() {
    for seed in 0..96u64 {
        let mut rng = TinyRng::new(seed);
        let verts =
            [rand_vec4(&mut rng, 1.0), rand_vec4(&mut rng, 1.0), rand_vec4(&mut rng, 1.0)];
        let a0 = rng.range_f32(-10.0, 10.0);
        let a1 = rng.range_f32(-10.0, 10.0);
        let a2 = rng.range_f32(-10.0, 10.0);
        let vp = Viewport::new(32, 32);
        let Some(tri) = setup_triangle(&verts, vp) else { continue };
        let attrs = [Vec4::splat(a0), Vec4::splat(a1), Vec4::splat(a2)];
        let lo = a0.min(a1).min(a2) - 1e-3;
        let hi = a0.max(a1).max(a2) + 1e-3;
        for f in rasterize_reference(&tri, vp).iter().take(64) {
            let v = tri.interpolate(f.edges, &attrs);
            assert!(v.x >= lo && v.x <= hi, "{} outside [{lo}, {hi}], seed {seed}", v.x);
        }
    }
}

/// Z-block compression is lossless at every achievable level.
#[test]
fn z_compression_lossless() {
    for seed in 0..64u64 {
        let mut rng = TinyRng::new(seed);
        let base = rng.range_u32(0, 0xffff00);
        let stencil = rng.range_u32(0, 255);
        let mut words = [0u32; ZBLOCK_WORDS];
        for w in words.iter_mut() {
            let delta = rng.range_u32(0, 0x1_0000);
            *w = (stencil << 24) | ((base + delta) & 0x00ff_ffff);
        }
        let c = compress_z_block(&words);
        assert_eq!(decompress_z_block(&c), words, "seed {seed}");
    }
}

/// Blending output is always within [0, 1] and respects the colour mask
/// exactly.
#[test]
fn blend_is_clamped_and_masked() {
    let factors = [
        BlendFactor::Zero,
        BlendFactor::One,
        BlendFactor::SrcColor,
        BlendFactor::OneMinusSrcColor,
        BlendFactor::DstColor,
        BlendFactor::OneMinusDstColor,
        BlendFactor::SrcAlpha,
        BlendFactor::OneMinusSrcAlpha,
        BlendFactor::DstAlpha,
        BlendFactor::OneMinusDstAlpha,
        BlendFactor::ConstColor,
        BlendFactor::OneMinusConstColor,
        BlendFactor::SrcAlphaSaturate,
    ];
    let eqs = [
        BlendEquation::Add,
        BlendEquation::Subtract,
        BlendEquation::ReverseSubtract,
        BlendEquation::Min,
        BlendEquation::Max,
    ];
    for seed in 0..256u64 {
        let mut rng = TinyRng::new(seed);
        let src = rand_vec4(&mut rng, 2.0);
        let dst = rand_vec4(&mut rng, 1.0).saturate();
        let mask = [rng.coin(), rng.coin(), rng.coin(), rng.coin()];
        let state = BlendState {
            enabled: true,
            src_factor: factors[rng.range_u32(0, 13) as usize],
            dst_factor: factors[rng.range_u32(0, 13) as usize],
            equation: eqs[rng.range_u32(0, 5) as usize],
            constant: Vec4::splat(0.5),
            color_mask: mask,
        };
        let out = blend(&state, src, dst);
        for i in 0..4 {
            assert!((0.0..=1.0).contains(&out[i]), "channel {i} = {}, seed {seed}", out[i]);
            if !mask[i] {
                assert_eq!(out[i], dst[i], "masked channel must keep dst, seed {seed}");
            }
        }
    }
}

/// The Z/stencil unit's combined test agrees with a straightforward
/// reference reimplementation for arbitrary states.
#[test]
fn z_stencil_matches_reference() {
    for seed in 0..512u64 {
        let mut rng = TinyRng::new(seed);
        let frag_z = rng.range_u32(0, 0x0100_0000);
        let stored_z = rng.range_u32(0, 0x0100_0000);
        let stored_s = rng.range_u32(0, 256) as u8;
        let depth_on = rng.coin();
        let depth_write = rng.coin();
        let stencil_on = rng.coin();
        let dfunc = COMPARES[rng.range_u32(0, 8) as usize];
        let sfunc = COMPARES[rng.range_u32(0, 8) as usize];
        let reference = rng.range_u32(0, 256) as u8;
        let sfail = STENCIL_OPS[rng.range_u32(0, 8) as usize];
        let dpfail = STENCIL_OPS[rng.range_u32(0, 8) as usize];
        let dppass = STENCIL_OPS[rng.range_u32(0, 8) as usize];

        let depth = DepthState { enabled: depth_on, func: dfunc, write: depth_write };
        let stencil = StencilState {
            enabled: stencil_on,
            func: sfunc,
            reference,
            read_mask: 0xff,
            write_mask: 0xff,
            sfail,
            dpfail,
            dppass,
        };
        let stored = ((stored_s as u32) << 24) | stored_z;
        let r = z_stencil_test(depth, stencil, frag_z, stored);

        // Reference semantics.
        let s_pass = !stencil_on || sfunc.test(reference as u32, stored_s as u32);
        let d_pass = !depth_on || dfunc.test(frag_z, stored_z);
        assert_eq!(r.pass, s_pass && d_pass, "seed {seed}");
        let expect_s = if stencil_on {
            let op = if !s_pass {
                sfail
            } else if !d_pass {
                dpfail
            } else {
                dppass
            };
            op.apply(stored_s, reference)
        } else {
            stored_s
        };
        let expect_z =
            if s_pass && d_pass && depth_on && depth_write { frag_z } else { stored_z };
        assert_eq!(r.new_word, ((expect_s as u32) << 24) | expect_z, "seed {seed}");
        assert_eq!(r.written, r.new_word != stored, "seed {seed}");
    }
}
