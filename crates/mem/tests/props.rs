//! Property tests for the memory hierarchy: the cache timing model
//! against a reference set-associative oracle, and controller functional
//! coherence under random traffic. Driven by the framework's seeded
//! [`TinyRng`] so runs are reproducible offline.

use attila_mem::cache::{Cache, CacheConfig, Lookup};
use attila_mem::{Client, MemOp, MemRequest, MemoryController};
use attila_sim::TinyRng;

/// A tiny reference model of a set-associative LRU cache (tags only,
/// fills instantaneous) to pin the steady-state hit/miss behaviour.
struct OracleCache {
    sets: usize,
    ways: usize,
    line: u64,
    frames: Vec<Vec<u64>>, // per set, MRU at the back
}

impl OracleCache {
    fn new(sets: usize, ways: usize, line: u64) -> Self {
        OracleCache { sets, ways, line, frames: vec![Vec::new(); sets] }
    }
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let frame = &mut self.frames[set];
        if let Some(pos) = frame.iter().position(|t| *t == tag) {
            frame.remove(pos);
            frame.push(tag);
            true
        } else {
            if frame.len() == self.ways {
                frame.remove(0);
            }
            frame.push(tag);
            false
        }
    }
}

/// With instantaneous fills and one access per cycle, the timing cache's
/// hit/miss sequence matches the oracle exactly.
#[test]
fn cache_matches_oracle() {
    for seed in 0..32u64 {
        let mut rng = TinyRng::new(seed);
        let count = rng.range_u32(1, 300);
        let config = CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64, ports: 1 };
        let mut cache = Cache::new(config, "prop");
        let mut oracle = OracleCache::new(4, 2, 64);
        for cycle in 0..count as u64 {
            let addr = rng.range_u64(0, 4096) & !3;
            let expected_hit = oracle.access(addr);
            match cache.lookup(cycle, addr, false) {
                Lookup::Hit => assert!(expected_hit, "false hit at {addr:#x}, seed {seed}"),
                Lookup::Miss => {
                    assert!(!expected_hit, "false miss at {addr:#x}, seed {seed}");
                    cache.allocate(addr).unwrap();
                    cache.fill_done(addr);
                }
                Lookup::Blocked => panic!("1 access/cycle never blocks, seed {seed}"),
            }
        }
    }
}

/// Reads through the controller always return the latest functionally
/// written data, for arbitrary interleavings of clients and addresses.
#[test]
fn controller_reads_see_latest_writes() {
    for seed in 0..12u64 {
        let mut rng = TinyRng::new(seed);
        let count = rng.range_u32(1, 40);
        let mut ctl = MemoryController::new(Default::default(), 1 << 16);
        let mut shadow = vec![0u8; 1 << 16];
        let mut cycle = 0u64;
        for id in 1..=count as u64 {
            let addr = rng.range_u64(0, 64) * 64;
            if rng.coin() {
                let val = rng.range_u32(0, 255) as u8;
                shadow[addr as usize..addr as usize + 64].fill(val);
                ctl.submit(MemRequest {
                    id,
                    client: Client::ColorWrite(0),
                    addr,
                    op: MemOp::Write { data: vec![val; 64] },
                })
                .unwrap();
                // Drain until the write completes (same-channel ordering
                // makes this deterministic).
                loop {
                    ctl.clock(cycle);
                    cycle += 1;
                    if ctl.pop_reply(Client::ColorWrite(0)).is_some() {
                        break;
                    }
                    assert!(cycle < 100_000, "seed {seed}");
                }
            } else {
                ctl.submit(MemRequest {
                    id,
                    client: Client::Texture(0),
                    addr,
                    op: MemOp::Read { size: 64 },
                })
                .unwrap();
                let data = loop {
                    ctl.clock(cycle);
                    cycle += 1;
                    if let Some(r) = ctl.pop_reply(Client::Texture(0)) {
                        break r.data;
                    }
                    assert!(cycle < 100_000, "seed {seed}");
                };
                assert_eq!(
                    &data[..],
                    &shadow[addr as usize..addr as usize + 64],
                    "seed {seed}"
                );
            }
        }
    }
}

/// Timing ops never corrupt the functional image.
#[test]
fn timing_ops_leave_image_untouched() {
    for seed in 0..16u64 {
        let mut rng = TinyRng::new(seed);
        let count = rng.range_u32(1, 20);
        let mut ctl = MemoryController::new(Default::default(), 1 << 12);
        for i in 0..(1u64 << 12) / 4 {
            ctl.gpu_mem_mut().write_u32(i * 4, i as u32);
        }
        let mut cycle = 0;
        for i in 0..count as u64 {
            let addr = rng.range_u64(0, 32) * 64;
            let op = if i % 2 == 0 {
                MemOp::TimingRead { size: 64 }
            } else {
                MemOp::TimingWrite { size: 64 }
            };
            ctl.submit(MemRequest { id: i, client: Client::Dac, addr, op }).unwrap();
        }
        for _ in 0..10_000 {
            ctl.clock(cycle);
            cycle += 1;
            while ctl.pop_reply(Client::Dac).is_some() {}
            if !ctl.busy() {
                break;
            }
        }
        for i in 0..(1u64 << 12) / 4 {
            assert_eq!(ctl.gpu_mem().read_u32(i * 4), i as u32, "seed {seed}");
        }
    }
}
