//! Property tests for the memory hierarchy: the cache timing model
//! against a reference set-associative oracle, and controller functional
//! coherence under random traffic.

use proptest::prelude::*;

use attila_mem::cache::{Cache, CacheConfig, Lookup};
use attila_mem::{Client, MemOp, MemRequest, MemoryController};

/// A tiny reference model of a set-associative LRU cache (tags only,
/// fills instantaneous) to pin the steady-state hit/miss behaviour.
struct OracleCache {
    sets: usize,
    ways: usize,
    line: u64,
    frames: Vec<Vec<u64>>, // per set, MRU at the back
}

impl OracleCache {
    fn new(sets: usize, ways: usize, line: u64) -> Self {
        OracleCache { sets, ways, line, frames: vec![Vec::new(); sets] }
    }
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let frame = &mut self.frames[set];
        if let Some(pos) = frame.iter().position(|t| *t == tag) {
            frame.remove(pos);
            frame.push(tag);
            true
        } else {
            if frame.len() == self.ways {
                frame.remove(0);
            }
            frame.push(tag);
            false
        }
    }
}

proptest! {
    /// With instantaneous fills and one access per cycle, the timing
    /// cache's hit/miss sequence matches the oracle exactly.
    #[test]
    fn cache_matches_oracle(addrs in proptest::collection::vec(0u64..4096, 1..300)) {
        let config = CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64, ports: 1 };
        let mut cache = Cache::new(config, "prop");
        let mut oracle = OracleCache::new(4, 2, 64);
        for (cycle, addr) in addrs.iter().enumerate() {
            let addr = *addr & !3;
            let expected_hit = oracle.access(addr);
            match cache.lookup(cycle as u64, addr, false) {
                Lookup::Hit => prop_assert!(expected_hit, "false hit at {addr:#x}"),
                Lookup::Miss => {
                    prop_assert!(!expected_hit, "false miss at {addr:#x}");
                    cache.allocate(addr).unwrap();
                    cache.fill_done(addr);
                }
                Lookup::Blocked => prop_assert!(false, "1 access/cycle never blocks"),
            }
        }
    }

    /// Reads through the controller always return the latest functionally
    /// written data, for arbitrary interleavings of clients and addresses.
    #[test]
    fn controller_reads_see_latest_writes(
        ops in proptest::collection::vec((0u64..64, proptest::bool::ANY, 0u8..255), 1..40),
    ) {
        let mut ctl = MemoryController::new(Default::default(), 1 << 16);
        let mut shadow = vec![0u8; 1 << 16];
        let mut cycle = 0u64;
        let mut id = 0u64;
        for (slot, is_write, val) in ops {
            let addr = slot * 64;
            id += 1;
            if is_write {
                shadow[addr as usize..addr as usize + 64].fill(val);
                ctl.submit(MemRequest {
                    id,
                    client: Client::ColorWrite(0),
                    addr,
                    op: MemOp::Write { data: vec![val; 64] },
                }).unwrap();
                // Drain until the write completes (same-channel ordering
                // makes this deterministic).
                loop {
                    ctl.clock(cycle);
                    cycle += 1;
                    if ctl.pop_reply(Client::ColorWrite(0)).is_some() {
                        break;
                    }
                    prop_assert!(cycle < 100_000);
                }
            } else {
                ctl.submit(MemRequest {
                    id,
                    client: Client::Texture(0),
                    addr,
                    op: MemOp::Read { size: 64 },
                }).unwrap();
                let data = loop {
                    ctl.clock(cycle);
                    cycle += 1;
                    if let Some(r) = ctl.pop_reply(Client::Texture(0)) {
                        break r.data;
                    }
                    prop_assert!(cycle < 100_000);
                };
                prop_assert_eq!(&data[..], &shadow[addr as usize..addr as usize + 64]);
            }
        }
    }

    /// Timing ops never corrupt the functional image.
    #[test]
    fn timing_ops_leave_image_untouched(
        addrs in proptest::collection::vec(0u64..32, 1..20),
    ) {
        let mut ctl = MemoryController::new(Default::default(), 1 << 12);
        for i in 0..(1u64 << 12) / 4 {
            ctl.gpu_mem_mut().write_u32(i * 4, i as u32);
        }
        let mut cycle = 0;
        for (i, slot) in addrs.iter().enumerate() {
            let addr = slot * 64;
            let op = if i % 2 == 0 {
                MemOp::TimingRead { size: 64 }
            } else {
                MemOp::TimingWrite { size: 64 }
            };
            ctl.submit(MemRequest { id: i as u64, client: Client::Dac, addr, op }).unwrap();
        }
        for _ in 0..10_000 {
            ctl.clock(cycle);
            cycle += 1;
            while ctl.pop_reply(Client::Dac).is_some() {}
            if !ctl.busy() {
                break;
            }
        }
        for i in 0..(1u64 << 12) / 4 {
            prop_assert_eq!(ctl.gpu_mem().read_u32(i * 4), i as u32);
        }
    }
}
