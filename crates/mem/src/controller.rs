//! The Memory Controller: channels, crossbar queues and the system bus.
//!
//! Per the paper (§2.2), the Memory Controller "is the unit that interfaces
//! with GPU memory and system memory (AGP or PCI Express)"; four channels
//! provide up to 64 bytes per cycle, interleaved on a 256-byte basis, and
//! "a number of queues and dedicated buses of configurable width conform a
//! complex crossbar that services the memory requests for the different
//! GPU units". The system bus resembles PCIe x16: two channels, one for
//! reads and one for writes.
//!
//! Arbitration is round-robin over clients with *row-hit priority*
//! (FR-FCFS-lite): when a channel's data bus frees, the first queued
//! request — scanning client slots from the rotation pointer — whose DRAM
//! row is already open issues first; absent any hit the plain rotation
//! order stands. The winner advances the pointer either way, so no client
//! starves: a stream of hits from one client moves the pointer past it,
//! handing the next free slot to its neighbours.

use std::collections::{BTreeMap, VecDeque};

use attila_sim::fault::MemFaultHandle;
use attila_sim::{Cycle, SignalName, TraceEvent, TraceSink};

use crate::gddr::{interleave, Direction, GddrChannel, GddrTiming, IssueReport};
use crate::memory::MemoryImage;

/// The GPU units that issue memory transactions (crossbar clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Client {
    /// Command Processor (buffer uploads, register state).
    CommandProcessor,
    /// Streamer (vertex/index fetch).
    Streamer,
    /// Z & Stencil test unit `n` (Z cache fills/evictions).
    ZStencil(u8),
    /// Colour write unit `n` (colour cache fills/evictions).
    ColorWrite(u8),
    /// Texture unit `n` (texture cache fills).
    Texture(u8),
    /// The DAC (screen refresh / frame dump reads).
    Dac,
}

impl Client {
    /// Dense slot index for per-client reply queues. Unit-numbered
    /// variants interleave (`3 + 3u`, `4 + 3u`, `5 + 3u`), so the index
    /// stays compact for any unit count without a per-type bound.
    fn index(self) -> usize {
        match self {
            Client::CommandProcessor => 0,
            Client::Streamer => 1,
            Client::Dac => 2,
            Client::ZStencil(u) => 3 + 3 * u as usize,
            Client::ColorWrite(u) => 4 + 3 * u as usize,
            Client::Texture(u) => 5 + 3 * u as usize,
        }
    }

    /// Stable numeric code identifying this client across processes —
    /// the serialized form used by checkpoints (unlike the private
    /// `index`, which is an internal slot layout free to change).
    pub fn code(self) -> u32 {
        match self {
            Client::CommandProcessor => 0,
            Client::Streamer => 1,
            Client::Dac => 2,
            Client::ZStencil(u) => 0x100 + u as u32,
            Client::ColorWrite(u) => 0x200 + u as u32,
            Client::Texture(u) => 0x300 + u as u32,
        }
    }

    /// Decodes a [`code`](Self::code) back into a client.
    pub fn from_code(code: u32) -> Option<Client> {
        match code {
            0 => Some(Client::CommandProcessor),
            1 => Some(Client::Streamer),
            2 => Some(Client::Dac),
            c @ 0x100..=0x1ff => Some(Client::ZStencil((c - 0x100) as u8)),
            c @ 0x200..=0x2ff => Some(Client::ColorWrite((c - 0x200) as u8)),
            c @ 0x300..=0x3ff => Some(Client::Texture((c - 0x300) as u8)),
            _ => None,
        }
    }
}

/// Maximum bytes per memory transaction (one GDDR burst).
pub const MAX_TRANSACTION: u32 = 64;

/// A memory operation.
///
/// The `Timing*` variants charge DRAM/bus timing and bandwidth without
/// touching the functional image. They exist because the ROP and texture
/// caches are *timing-only* models over a write-through functional image:
/// a compressed Z-line eviction, for instance, moves 64 bytes on the
/// simulated bus while the uncompressed truth already lives in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemOp {
    /// Read `size` bytes (reply carries the data).
    Read {
        /// Bytes to read (≤ [`MAX_TRANSACTION`]).
        size: u32,
    },
    /// Write the payload.
    Write {
        /// Bytes to write (≤ [`MAX_TRANSACTION`]).
        data: Vec<u8>,
    },
    /// Charge read timing for `size` bytes; reply carries no data.
    TimingRead {
        /// Bytes to charge (≤ [`MAX_TRANSACTION`]).
        size: u32,
    },
    /// Charge write timing for `size` bytes; the image is untouched.
    TimingWrite {
        /// Bytes to charge (≤ [`MAX_TRANSACTION`]).
        size: u32,
    },
}

impl MemOp {
    /// The transaction size in bytes.
    pub fn size(&self) -> u32 {
        match self {
            MemOp::Read { size } | MemOp::TimingRead { size } | MemOp::TimingWrite { size } => {
                *size
            }
            MemOp::Write { data } => data.len() as u32,
        }
    }

    /// Whether the DRAM sees this as a read.
    pub fn is_read(&self) -> bool {
        matches!(self, MemOp::Read { .. } | MemOp::TimingRead { .. })
    }
}

/// A request submitted to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen id, echoed in the reply.
    pub id: u64,
    /// The issuing unit.
    pub client: Client,
    /// GPU byte address.
    pub addr: u64,
    /// Operation.
    pub op: MemOp,
}

/// A completed transaction returned to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemReply {
    /// The request's id.
    pub id: u64,
    /// The issuing unit.
    pub client: Client,
    /// GPU byte address.
    pub addr: u64,
    /// Read data (empty for writes).
    pub data: Vec<u8>,
}

/// Error returned when a client's request queue is full — the client must
/// apply back-pressure and retry next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemQueueFull;

impl std::fmt::Display for MemQueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory request queue is full")
    }
}

impl std::error::Error for MemQueueFull {}

/// Memory controller configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemControllerConfig {
    /// Number of GDDR channels (baseline: 4; case study: 2).
    pub channels: usize,
    /// Channel interleave granularity in bytes (paper: 256).
    pub interleave_bytes: u64,
    /// Per-channel DRAM timing.
    pub timing: GddrTiming,
    /// Per-client request queue capacity.
    pub queue_capacity: usize,
    /// Crossbar/bus latency added to every reply.
    pub bus_latency: Cycle,
    /// System→GPU bus bandwidth in bytes/cycle per direction (paper: 8).
    pub system_bus_bytes_per_cycle: u64,
    /// Base latency of a system-bus transfer.
    pub system_bus_latency: Cycle,
}

impl Default for MemControllerConfig {
    fn default() -> Self {
        MemControllerConfig {
            channels: 4,
            interleave_bytes: 256,
            timing: GddrTiming::default(),
            queue_capacity: 16,
            bus_latency: 2,
            system_bus_bytes_per_cycle: 8,
            system_bus_latency: 100,
        }
    }
}

struct ChannelState {
    dram: GddrChannel,
    /// Per-client request queues, dense by [`Client::index`]. Slots for
    /// clients that never submitted stay empty; the vector grows on first
    /// submit, never in the clock loop. Replaces the previous
    /// `BTreeMap<Client, VecDeque<_>>` so arbitration walks an array
    /// instead of rebuilding a key list every issue.
    queues: Vec<VecDeque<MemRequest>>,
    /// Requests queued across all slots of this channel.
    queued: usize,
    /// Round-robin pointer over queue slots.
    next_client: usize,
    /// Pre-interned `mem.ch{c}.bank{b}` signal names, one per bank,
    /// populated by [`MemoryController::attach_trace`]. Empty when the
    /// signal trace is off, which is the only state the hot path checks.
    bank_signals: Vec<SignalName>,
}

/// An in-flight system-bus transfer (buffer upload from system memory).
#[derive(Debug)]
struct SystemCopy {
    id: u64,
    dst: u64,
    data: Vec<u8>,
    done_at: Cycle,
}

/// The memory controller: GPU memory image + timing model + crossbar.
pub struct MemoryController {
    config: MemControllerConfig,
    gpu_mem: MemoryImage, // state: external — snapshotted by CheckpointBody::memory, not by save_state
    channels: Vec<ChannelState>,
    // state: transient — reply/upload pipelines below are empty by the
    // fully_drained checkpoint precondition
    /// Replies scheduled for delivery, keyed by due cycle.
    pending_replies: BTreeMap<Cycle, Vec<MemReply>>,
    /// Delivered replies awaiting pickup, indexed by [`Client::index`] —
    /// a dense slot per client so the per-cycle `pop_reply` polls every
    /// box performs are an array index, not a tree lookup.
    ready_replies: Vec<VecDeque<MemReply>>,
    /// Total replies awaiting pickup across all clients.
    ready_count: usize,
    /// In-flight system-bus uploads, in completion order.
    system_copies: VecDeque<SystemCopy>,
    // state: checkpointed
    /// Cycle at which the system write bus frees.
    system_bus_free_at: Cycle,
    /// Completed upload ids awaiting pickup.
    finished_uploads: VecDeque<u64>, // state: transient — empty once uploads drain
    queued_requests: usize, // state: transient — zero once request queues drain
    bytes_read: u64,
    bytes_written: u64,
    per_client_bytes: BTreeMap<Client, u64>,
    /// Injected fault schedule (stalls, reply bit flips), when armed.
    faults: Option<MemFaultHandle>, // state: transient — fault schedules are re-armed per run, never checkpointed
    /// Signal-trace sink for per-bank DRAM issue events, when attached.
    /// Tracing already forces the serial clock loop, so the shared sink
    /// is never touched from a worker thread.
    trace: Option<TraceSink>,
}

impl MemoryController {
    /// Creates a controller managing `gpu_mem_bytes` of GPU memory.
    pub fn new(config: MemControllerConfig, gpu_mem_bytes: usize) -> Self {
        assert!(config.channels > 0);
        let channels = (0..config.channels)
            .map(|_| ChannelState {
                dram: GddrChannel::new(config.timing),
                queues: Vec::new(),
                queued: 0,
                next_client: 0,
                bank_signals: Vec::new(),
            })
            .collect();
        MemoryController {
            config,
            gpu_mem: MemoryImage::new(gpu_mem_bytes),
            channels,
            pending_replies: BTreeMap::new(),
            ready_replies: Vec::new(),
            ready_count: 0,
            system_copies: VecDeque::new(),
            system_bus_free_at: 0,
            finished_uploads: VecDeque::new(),
            queued_requests: 0,
            bytes_read: 0,
            bytes_written: 0,
            per_client_bytes: BTreeMap::new(),
            faults: None,
            trace: None,
        }
    }

    /// Attaches a signal-trace sink: every DRAM issue is then recorded as
    /// a `mem.ch{c}.bank{b}` event carrying the row-buffer outcome and
    /// the transaction's `start..done` window (the raw material for the
    /// `attila viz` bank lanes). Signal names are interned here, once,
    /// so the per-issue cost while tracing is a refcount bump plus the
    /// event's info string.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        for (ch_idx, ch) in self.channels.iter_mut().enumerate() {
            ch.bank_signals = (0..ch.dram.bank_count())
                .map(|b| {
                    SignalName::interned(
                        format!("mem.ch{ch_idx}.bank{b}"),
                        SignalName::UNREGISTERED,
                    )
                })
                .collect();
        }
        self.trace = Some(sink);
    }

    /// Arms an injected fault schedule (see
    /// [`FaultInjector`](attila_sim::FaultInjector)): the controller
    /// freezes during scheduled stall windows and flips scheduled bits in
    /// read replies.
    pub fn inject_faults(&mut self, hook: MemFaultHandle) {
        self.faults = Some(hook);
    }

    /// The controller configuration.
    pub fn config(&self) -> &MemControllerConfig {
        &self.config
    }

    /// Read-only view of GPU memory (golden-model sampling, DAC dumps).
    pub fn gpu_mem(&self) -> &MemoryImage {
        &self.gpu_mem
    }

    /// Mutable GPU memory — used by *functional* writers (fast clear block
    /// updates, test setup). Timing-relevant traffic must go through
    /// [`submit`](Self::submit).
    pub fn gpu_mem_mut(&mut self) -> &mut MemoryImage {
        &mut self.gpu_mem
    }

    /// Free request-queue slots for `client` on the channel serving
    /// `addr` — lets callers reserve room for multi-transaction bursts.
    pub fn free_slots(&self, client: Client, addr: u64) -> usize {
        let (ch, _) = interleave(addr, self.config.channels, self.config.interleave_bytes);
        self.config.queue_capacity
            - self.channels[ch].queues.get(client.index()).map(|q| q.len()).unwrap_or(0)
    }

    /// Whether `client` can enqueue another request this cycle.
    pub fn can_accept(&self, client: Client, addr: u64) -> bool {
        let (ch, _) = interleave(addr, self.config.channels, self.config.interleave_bytes);
        self.channels[ch]
            .queues
            .get(client.index())
            .map(|q| q.len() < self.config.queue_capacity)
            .unwrap_or(true)
    }

    /// Submits a transaction.
    ///
    /// # Errors
    ///
    /// Returns [`MemQueueFull`] when the client's queue for the target
    /// channel is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if the transaction exceeds [`MAX_TRANSACTION`] bytes or
    /// crosses a channel-interleave boundary (callers split requests;
    /// 64-byte-aligned 64-byte transactions never cross the 256-byte
    /// interleave).
    pub fn submit(&mut self, req: MemRequest) -> Result<(), MemQueueFull> {
        let size = req.op.size();
        assert!(size > 0 && size <= MAX_TRANSACTION, "transaction size {size} out of range");
        let (ch_a, _) = interleave(req.addr, self.config.channels, self.config.interleave_bytes);
        let (ch_b, _) = interleave(
            req.addr + size as u64 - 1,
            self.config.channels,
            self.config.interleave_bytes,
        );
        assert_eq!(ch_a, ch_b, "transaction crosses a channel boundary");
        let ch = &mut self.channels[ch_a];
        let slot = req.client.index();
        if slot >= ch.queues.len() {
            ch.queues.resize_with(slot + 1, VecDeque::new);
        }
        if ch.queues[slot].len() >= self.config.queue_capacity {
            return Err(MemQueueFull);
        }
        ch.queues[slot].push_back(req);
        ch.queued += 1;
        self.queued_requests += 1;
        Ok(())
    }

    /// Starts a buffer upload over the system bus (Command Processor
    /// "write buffer" command). Completion is reported via
    /// [`pop_finished_upload`](Self::pop_finished_upload).
    pub fn submit_system_upload(&mut self, cycle: Cycle, id: u64, dst: u64, data: Vec<u8>) {
        let transfer =
            (data.len() as u64).div_ceil(self.config.system_bus_bytes_per_cycle.max(1));
        let start = cycle.max(self.system_bus_free_at);
        let done = start + self.config.system_bus_latency + transfer;
        self.system_bus_free_at = done;
        self.system_copies.push_back(SystemCopy { id, dst, data, done_at: done });
    }

    /// Pops the id of a completed system upload, if any.
    pub fn pop_finished_upload(&mut self) -> Option<u64> {
        self.finished_uploads.pop_front()
    }

    /// Retrieves the next completed transaction for `client`.
    pub fn pop_reply(&mut self, client: Client) -> Option<MemReply> {
        let reply = self.ready_replies.get_mut(client.index())?.pop_front();
        if reply.is_some() {
            self.ready_count -= 1;
        }
        reply
    }

    /// Advances the controller one cycle: issues queued requests to idle
    /// channels, applies functional effects, and delivers due replies.
    pub fn clock(&mut self, cycle: Cycle) {
        // An injected stall freezes the whole controller: nothing is
        // issued, completed or delivered while the window is open.
        if let Some(f) = &self.faults {
            // lint:allow(shared-mut) fault hooks force the serial loop; never clocked from a worker
            if f.borrow_mut().stalled(cycle) {
                return;
            }
        }
        // Complete system-bus uploads.
        while let Some(copy) = self.system_copies.front() {
            if copy.done_at <= cycle {
                let copy = self.system_copies.pop_front().expect("front exists");
                self.gpu_mem.write(copy.dst, &copy.data);
                self.bytes_written += copy.data.len() as u64;
                self.finished_uploads.push_back(copy.id);
            } else {
                break;
            }
        }

        // Issue to each channel that is free this cycle.
        let (n_channels, granularity) = (self.config.channels, self.config.interleave_bytes);
        for ch_idx in 0..self.channels.len() {
            loop {
                let ch = &mut self.channels[ch_idx];
                if ch.dram.busy_until() > cycle || ch.queued == 0 {
                    break;
                }
                // Round-robin over client slots, row hits first: starting
                // at the rotation pointer, the first queued request whose
                // DRAM row is already open wins; with no hit in sight the
                // plain rotation order stands. Deterministic — the scan
                // order and the bank probe depend only on simulator state.
                let n = ch.queues.len();
                let mut fallback = None;
                let mut picked = None;
                for off in 0..n {
                    let slot = (ch.next_client + off) % n;
                    let Some(req) = ch.queues[slot].front() else { continue };
                    if fallback.is_none() {
                        fallback = Some(slot);
                    }
                    let (_, local) = interleave(req.addr, n_channels, granularity);
                    if ch.dram.would_hit(local) {
                        picked = Some(slot);
                        break;
                    }
                }
                let Some(slot) = picked.or(fallback) else { break };
                ch.next_client = (slot + 1) % n;
                let req = ch.queues[slot].pop_front().expect("slot checked non-empty");
                ch.queued -= 1;
                self.queued_requests -= 1;
                let (_, local) = interleave(req.addr, n_channels, granularity);
                let size = req.op.size();
                let dir = if req.op.is_read() { Direction::Read } else { Direction::Write };
                let report = ch.dram.issue(cycle, local, dir);
                let done = report.done;
                if self.trace.is_some() {
                    self.trace_issue(ch_idx, report, dir);
                }
                // Functional effect, in channel issue order.
                let mut reply = match req.op {
                    MemOp::Read { size } => {
                        let data = self.gpu_mem.read_vec(req.addr, size as usize);
                        self.bytes_read += size as u64;
                        MemReply { id: req.id, client: req.client, addr: req.addr, data }
                    }
                    MemOp::Write { data } => {
                        self.gpu_mem.write(req.addr, &data);
                        self.bytes_written += data.len() as u64;
                        MemReply { id: req.id, client: req.client, addr: req.addr, data: Vec::new() }
                    }
                    MemOp::TimingRead { size } => {
                        self.bytes_read += size as u64;
                        MemReply { id: req.id, client: req.client, addr: req.addr, data: Vec::new() }
                    }
                    MemOp::TimingWrite { size } => {
                        self.bytes_written += size as u64;
                        MemReply { id: req.id, client: req.client, addr: req.addr, data: Vec::new() }
                    }
                };
                if dir == Direction::Read {
                    if let Some(f) = &self.faults {
                        // A scheduled single-bit error: the DRAM cell itself
                        // is flipped, so the corruption reaches both this
                        // reply and every later functional read.
                        // lint:allow(shared-mut) fault hooks force the serial loop; never clocked from a worker
                        if let Some(bit) = f.borrow_mut().next_read_flip() {
                            let mask = 1u8 << bit;
                            let mut byte = [0u8; 1];
                            self.gpu_mem.read(reply.addr, &mut byte);
                            self.gpu_mem.write(reply.addr, &[byte[0] ^ mask]);
                            if let Some(first) = reply.data.first_mut() {
                                *first ^= mask;
                            }
                        }
                    }
                }
                *self.per_client_bytes.entry(req.client).or_default() += size as u64;
                let latency_extra = if dir == Direction::Read {
                    self.channels[ch_idx].dram.read_latency()
                } else {
                    0
                };
                let due = done + latency_extra + self.config.bus_latency;
                self.pending_replies.entry(due).or_default().push(reply);
            }
        }

        // Deliver replies due now or earlier.
        let due: Vec<Cycle> =
            self.pending_replies.range(..=cycle).map(|(c, _)| *c).collect();
        for c in due {
            for reply in self.pending_replies.remove(&c).expect("key exists") {
                let slot = reply.client.index();
                if slot >= self.ready_replies.len() {
                    self.ready_replies.resize_with(slot + 1, VecDeque::new);
                }
                self.ready_replies[slot].push_back(reply);
                self.ready_count += 1;
            }
        }
    }

    /// Records one DRAM issue on the channel/bank's interned signal.
    ///
    /// Out of line and cold: tracing is a debug mode that already forces
    /// the serial clock loop and accepts formatting costs, exactly like
    /// the fault hooks above. The hot path pays only the `is_some` check.
    #[cold]
    fn trace_issue(&self, ch_idx: usize, report: IssueReport, dir: Direction) {
        let Some(sink) = &self.trace else { return };
        let Some(signal) = self.channels[ch_idx].bank_signals.get(report.bank) else { return };
        let dir_ch = match dir {
            Direction::Read => 'R',
            Direction::Write => 'W',
        };
        // lint:allow(hot-alloc) tracing only; disabled in measured runs
        let info = format!(
            "{} {} row={} {}..{}",
            report.outcome.label(),
            dir_ch,
            report.row,
            report.start,
            report.done
        );
        // lint:allow(shared-mut) trace sink is only written under the serial loop
        sink.borrow_mut().push(TraceEvent { cycle: report.done, signal: signal.clone(), info });
    }

    /// Whether any work is queued or in flight (delivered-but-unpopped
    /// replies don't count: that's the client's business).
    pub fn busy(&self) -> bool {
        self.queued_requests > 0
            || !self.pending_replies.is_empty()
            || !self.system_copies.is_empty()
    }

    /// Whether the controller is *fully* quiescent: nothing queued or in
    /// flight **and** nothing delivered-but-unpopped. This is the
    /// condition a checkpoint requires — [`busy`](Self::busy) deliberately
    /// ignores delivered replies and finished uploads, but those carry
    /// state that a snapshot taken between delivery and pickup would lose.
    pub fn fully_drained(&self) -> bool {
        !self.busy() && self.ready_count == 0 && self.finished_uploads.is_empty()
    }

    /// Captures the controller's persistent state — per-channel DRAM
    /// state, arbitration pointers, bus occupancy and byte accounting — as
    /// plain data for checkpointing. The functional memory image is
    /// snapshotted separately (via [`gpu_mem`](Self::gpu_mem)); request
    /// queues and reply pipelines are empty by the
    /// [`fully_drained`](Self::fully_drained) precondition.
    pub fn save_state(&self) -> MemControllerState {
        MemControllerState {
            channels: self.channels.iter().map(|c| c.dram.save_state()).collect(),
            next_clients: self.channels.iter().map(|c| c.next_client).collect(),
            queue_slots: self.channels.iter().map(|c| c.queues.len()).collect(),
            system_bus_free_at: self.system_bus_free_at,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            per_client_bytes: self
                .per_client_bytes
                .iter()
                .map(|(c, b)| (*c, *b))
                .collect(),
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state) into
    /// a freshly built controller of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`attila_sim::SimError::CheckpointMismatch`] when the
    /// channel counts differ.
    pub fn load_state(
        &mut self,
        state: &MemControllerState,
    ) -> Result<(), attila_sim::SimError> {
        if state.channels.len() != self.channels.len()
            || state.next_clients.len() != self.channels.len()
            || state.queue_slots.len() != self.channels.len()
        {
            return Err(attila_sim::SimError::CheckpointMismatch {
                reason: format!(
                    "controller has {} channels, checkpoint carries {}",
                    self.channels.len(),
                    state.channels.len()
                ),
            });
        }
        for (ch, ((dram, next), slots)) in self.channels.iter_mut().zip(
            state.channels.iter().zip(&state.next_clients).zip(&state.queue_slots),
        ) {
            ch.dram.load_state(dram)?;
            ch.next_client = *next;
            // The dense queue vector's length is arbitration state: the
            // rotation pointer wraps modulo the slot count, so a resumed
            // run must scan the same ring as the uninterrupted one even
            // though every queue is empty at a checkpoint.
            if ch.queues.len() < *slots {
                ch.queues.resize_with(*slots, VecDeque::new);
            }
        }
        self.system_bus_free_at = state.system_bus_free_at;
        self.bytes_read = state.bytes_read;
        self.bytes_written = state.bytes_written;
        self.per_client_bytes = state.per_client_bytes.iter().copied().collect();
        Ok(())
    }

    /// The controller's next completion cycle: the earliest cycle at which
    /// an in-flight reply becomes deliverable or a system-bus upload
    /// lands, if anything is in flight at all.
    pub fn next_completion_cycle(&self) -> Option<Cycle> {
        let reply = self.pending_replies.keys().next().copied();
        // Uploads serialize on the system bus, so the front is earliest.
        let upload = self.system_copies.front().map(|c| c.done_at);
        match (reply, upload) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The controller's event horizon (see
    /// [`Horizon`](attila_sim::Horizon) for the contract).
    ///
    /// Conservative on purpose: queued-but-unissued requests depend on
    /// per-channel DRAM state, delivered replies and finished uploads are
    /// popped by clients on their next clock, and an armed fault schedule
    /// may open a stall window at any cycle — all of those force `Busy`.
    /// Only a controller whose remaining work is purely waiting (scheduled
    /// reply deliveries, a system-bus transfer in flight) reports
    /// [`Horizon::IdleUntil`](attila_sim::Horizon::IdleUntil) its
    /// [`next_completion_cycle`](Self::next_completion_cycle).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if self.queued_requests > 0
            || self.faults.is_some()
            || self.ready_count > 0
            || !self.finished_uploads.is_empty()
        {
            return attila_sim::Horizon::Busy;
        }
        attila_sim::Horizon::from_event(self.next_completion_cycle())
    }

    /// Total bytes read from GPU memory.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written to GPU memory (including system uploads).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Bytes transferred on behalf of one client.
    pub fn client_bytes(&self, client: Client) -> u64 {
        self.per_client_bytes.get(&client).copied().unwrap_or(0)
    }

    /// Aggregate DRAM busy cycles across channels (for bandwidth
    /// utilization statistics).
    pub fn channel_busy_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.dram.total_busy_cycles()).sum()
    }

    /// Total DRAM transactions across channels.
    pub fn channel_transactions(&self) -> u64 {
        self.channels.iter().map(|c| c.dram.total_transactions()).sum()
    }

    /// Number of GDDR channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// One channel's DRAM model, for per-bank statistics and the
    /// timeline visualizer's occupancy counters.
    pub fn channel(&self, idx: usize) -> &GddrChannel {
        &self.channels[idx].dram
    }

    /// Row-buffer hits across all channels and banks.
    pub fn row_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.dram.row_hits()).sum()
    }

    /// Row-buffer misses (bank idle, one ACTIVATE) across all channels.
    pub fn row_misses(&self) -> u64 {
        self.channels.iter().map(|c| c.dram.row_misses()).sum()
    }

    /// Row-buffer conflicts (PRECHARGE + ACTIVATE) across all channels.
    pub fn row_conflicts(&self) -> u64 {
        self.channels.iter().map(|c| c.dram.row_conflicts()).sum()
    }

    /// Read↔write bus turnarounds across all channels.
    pub fn turnarounds(&self) -> u64 {
        self.channels.iter().map(|c| c.dram.turnarounds()).sum()
    }
}

/// Plain-data snapshot of a [`MemoryController`]'s persistent state, for
/// checkpointing (the functional memory image travels separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemControllerState {
    /// Per-channel DRAM state, in channel order.
    pub channels: Vec<crate::gddr::GddrState>,
    /// Per-channel round-robin arbitration pointer, in channel order.
    pub next_clients: Vec<usize>,
    /// Per-channel dense-queue slot count, in channel order. The slot
    /// vector grows on first submit per client and its length is the
    /// rotation modulus, so it must survive a restore.
    pub queue_slots: Vec<usize>,
    /// Cycle at which the system write bus frees.
    pub system_bus_free_at: Cycle,
    /// Total bytes read so far.
    pub bytes_read: u64,
    /// Total bytes written so far.
    pub bytes_written: u64,
    /// Per-client byte accounting, in client order.
    pub per_client_bytes: Vec<(Client, u64)>,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("channels", &self.channels.len())
            .field("queued", &self.queued_requests)
            .field("bytes_read", &self.bytes_read)
            .field("bytes_written", &self.bytes_written)
            .finish()
    }
}

/// Splits an arbitrary `(addr, len)` range into [`MAX_TRANSACTION`]-sized,
/// boundary-aligned pieces suitable for [`MemoryController::submit`].
pub fn split_transactions(addr: u64, len: u64) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    let mut cur = addr;
    let end = addr + len;
    while cur < end {
        let boundary = (cur / MAX_TRANSACTION as u64 + 1) * MAX_TRANSACTION as u64;
        let piece_end = boundary.min(end);
        out.push((cur, (piece_end - cur) as u32));
        cur = piece_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> MemoryController {
        MemoryController::new(MemControllerConfig::default(), 1 << 20)
    }

    fn run_until_reply(
        ctl: &mut MemoryController,
        client: Client,
        start: Cycle,
        max: Cycle,
    ) -> (Cycle, MemReply) {
        for cycle in start..start + max {
            ctl.clock(cycle);
            if let Some(r) = ctl.pop_reply(client) {
                return (cycle, r);
            }
        }
        panic!("no reply within {max} cycles");
    }

    #[test]
    fn read_returns_written_data() {
        let mut c = ctl();
        c.gpu_mem_mut().write(128, &[9u8; 64]);
        c.submit(MemRequest {
            id: 1,
            client: Client::Streamer,
            addr: 128,
            op: MemOp::Read { size: 64 },
        })
        .unwrap();
        let (_, reply) = run_until_reply(&mut c, Client::Streamer, 0, 200);
        assert_eq!(reply.id, 1);
        assert_eq!(reply.data, vec![9u8; 64]);
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut c = ctl();
        c.submit(MemRequest {
            id: 1,
            client: Client::ColorWrite(0),
            addr: 256,
            op: MemOp::Write { data: vec![0xabu8; 64] },
        })
        .unwrap();
        let (cycle, _) = run_until_reply(&mut c, Client::ColorWrite(0), 0, 200);
        c.submit(MemRequest {
            id: 2,
            client: Client::Texture(0),
            addr: 256,
            op: MemOp::Read { size: 64 },
        })
        .unwrap();
        let (_, reply) = run_until_reply(&mut c, Client::Texture(0), cycle + 1, 200);
        assert_eq!(reply.data, vec![0xabu8; 64]);
    }

    #[test]
    fn read_latency_exceeds_write_latency() {
        let mut c = ctl();
        c.submit(MemRequest {
            id: 1,
            client: Client::Streamer,
            addr: 0,
            op: MemOp::Read { size: 64 },
        })
        .unwrap();
        let (read_done, _) = run_until_reply(&mut c, Client::Streamer, 0, 200);
        let mut c = ctl();
        c.submit(MemRequest {
            id: 1,
            client: Client::Streamer,
            addr: 0,
            op: MemOp::Write { data: vec![0; 64] },
        })
        .unwrap();
        let (write_done, _) = run_until_reply(&mut c, Client::Streamer, 0, 200);
        assert!(read_done > write_done, "reads see CAS latency: {read_done} vs {write_done}");
    }

    #[test]
    fn parallel_channels_overlap() {
        // Two reads to different channels complete sooner than two to one.
        let mut c = ctl();
        for (id, addr) in [(1, 0u64), (2, 256)] {
            c.submit(MemRequest {
                id,
                client: Client::Streamer,
                addr,
                op: MemOp::Read { size: 64 },
            })
            .unwrap();
        }
        let mut both_parallel = None;
        for cycle in 0..300 {
            c.clock(cycle);
            while c.pop_reply(Client::Streamer).is_some() {}
            if !c.busy() {
                both_parallel = Some(cycle);
                break;
            }
        }
        let mut c = ctl();
        for (id, addr) in [(1, 0u64), (2, 1024)] {
            // both map to channel 0
            c.submit(MemRequest {
                id,
                client: Client::Streamer,
                addr,
                op: MemOp::Read { size: 64 },
            })
            .unwrap();
        }
        let mut both_serial = None;
        for cycle in 0..300 {
            c.clock(cycle);
            while c.pop_reply(Client::Streamer).is_some() {}
            if !c.busy() {
                both_serial = Some(cycle);
                break;
            }
        }
        assert!(both_parallel.unwrap() < both_serial.unwrap());
    }

    #[test]
    fn queue_capacity_backpressure() {
        let cfg = MemControllerConfig { queue_capacity: 2, ..Default::default() };
        let mut c = MemoryController::new(cfg, 1 << 20);
        let req = |id| MemRequest {
            id,
            client: Client::Texture(0),
            addr: 0,
            op: MemOp::Read { size: 64 },
        };
        assert!(c.submit(req(1)).is_ok());
        assert!(c.submit(req(2)).is_ok());
        assert_eq!(c.submit(req(3)), Err(MemQueueFull));
        assert!(!c.can_accept(Client::Texture(0), 0));
        assert!(c.can_accept(Client::Texture(0), 256), "other channels still accept");
    }

    #[test]
    fn round_robin_arbitration_interleaves_clients() {
        let mut c = ctl();
        for id in 0..4 {
            c.submit(MemRequest {
                id,
                client: Client::Texture(0),
                addr: id * 64, // hmm, these map to different channels
                op: MemOp::Read { size: 64 },
            })
            .unwrap();
        }
        // All to channel 0, two clients.
        let mut c = ctl();
        for id in 0..2 {
            c.submit(MemRequest {
                id,
                client: Client::Texture(0),
                addr: 1024 * id,
                op: MemOp::Read { size: 64 },
            })
            .unwrap();
            c.submit(MemRequest {
                id: 10 + id,
                client: Client::ZStencil(0),
                addr: 1024 * id + 64,
                op: MemOp::Read { size: 64 },
            })
            .unwrap();
        }
        let mut tex_done = None;
        let mut z_done = None;
        for cycle in 0..500 {
            c.clock(cycle);
            if c.pop_reply(Client::Texture(0)).is_some() && tex_done.is_none() {
                tex_done = Some(cycle);
            }
            if c.pop_reply(Client::ZStencil(0)).is_some() && z_done.is_none() {
                z_done = Some(cycle);
            }
            if tex_done.is_some() && z_done.is_some() {
                break;
            }
        }
        let (t, z) = (tex_done.unwrap(), z_done.unwrap());
        assert!((t as i64 - z as i64).abs() < 30, "fair service: {t} vs {z}");
    }

    #[test]
    fn row_hit_priority_preempts_rotation() {
        let mut c = ctl();
        // Warm channel 0 / bank 0 / row 0 via Texture(0).
        c.submit(MemRequest {
            id: 1,
            client: Client::Texture(0),
            addr: 0,
            op: MemOp::Read { size: 64 },
        })
        .unwrap();
        let (cycle, _) = run_until_reply(&mut c, Client::Texture(0), 0, 200);
        // Two contenders on channel 0: ZStencil first in rotation order
        // with a row *conflict* (local 0x8000 = row 8, bank 0), Texture
        // behind it in rotation with a row *hit* (local 64 = row 0).
        c.submit(MemRequest {
            id: 2,
            client: Client::ZStencil(0),
            addr: 131072, // global block 512 -> channel 0, local 32768
            op: MemOp::Read { size: 64 },
        })
        .unwrap();
        c.submit(MemRequest {
            id: 3,
            client: Client::Texture(0),
            addr: 64, // channel 0, local 64: same row as the warm access
            op: MemOp::Read { size: 64 },
        })
        .unwrap();
        let (tex_at, tex) = run_until_reply(&mut c, Client::Texture(0), cycle + 1, 300);
        let (z_at, _) = run_until_reply(&mut c, Client::ZStencil(0), cycle + 1, 300);
        assert_eq!(tex.id, 3);
        assert!(tex_at < z_at, "row hit issues first: tex {tex_at} vs z {z_at}");
        assert_eq!(c.row_hits(), 1, "the preempting access hit the open row");
    }

    #[test]
    fn attached_trace_records_bank_events() {
        use attila_sim::SignalTrace;
        let mut c = ctl();
        c.attach_trace(SignalTrace::new_sink());
        c.submit(MemRequest {
            id: 1,
            client: Client::Streamer,
            addr: 0,
            op: MemOp::Read { size: 64 },
        })
        .unwrap();
        run_until_reply(&mut c, Client::Streamer, 0, 200);
        let sink = c.trace.clone().expect("sink attached");
        let trace = sink.borrow();
        assert_eq!(trace.len(), 1);
        let ev = &trace.events()[0];
        assert_eq!(ev.signal, "mem.ch0.bank0");
        assert!(ev.info.starts_with("miss R row=0 "), "got: {}", ev.info);
    }

    #[test]
    fn system_upload_writes_memory_after_latency() {
        let mut c = ctl();
        c.submit_system_upload(0, 77, 512, vec![5u8; 256]);
        let mut finished_at = None;
        for cycle in 0..500 {
            c.clock(cycle);
            if let Some(id) = c.pop_finished_upload() {
                assert_eq!(id, 77);
                finished_at = Some(cycle);
                break;
            }
        }
        let done = finished_at.expect("upload completes");
        // 100 latency + 256/8 = 32 transfer.
        assert!(done >= 132, "done at {done}");
        assert_eq!(c.gpu_mem().read_vec(512, 4), vec![5u8; 4]);
    }

    #[test]
    fn uploads_serialize_on_the_system_bus() {
        let mut c = ctl();
        c.submit_system_upload(0, 1, 0, vec![1u8; 800]);
        c.submit_system_upload(0, 2, 4096, vec![2u8; 800]);
        let mut done = Vec::new();
        for cycle in 0..1000 {
            c.clock(cycle);
            while let Some(id) = c.pop_finished_upload() {
                done.push((id, cycle));
            }
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done[0].0, 1);
        assert_eq!(done[1].0, 2);
        assert!(done[1].1 >= done[0].1 + 100, "second pays its own transfer");
    }

    #[test]
    fn split_transactions_respects_boundaries() {
        assert_eq!(split_transactions(0, 64), vec![(0, 64)]);
        assert_eq!(split_transactions(0, 128), vec![(0, 64), (64, 64)]);
        assert_eq!(split_transactions(60, 8), vec![(60, 4), (64, 4)]);
        assert_eq!(split_transactions(100, 0), vec![]);
        let pieces = split_transactions(3, 200);
        assert_eq!(pieces.iter().map(|(_, l)| *l as u64).sum::<u64>(), 200);
        for (a, l) in pieces {
            assert!(a / 64 == (a + l as u64 - 1) / 64, "piece ({a},{l}) crosses 64B");
        }
    }

    #[test]
    fn busy_reflects_outstanding_work() {
        let mut c = ctl();
        assert!(!c.busy());
        c.submit(MemRequest {
            id: 1,
            client: Client::Dac,
            addr: 0,
            op: MemOp::Read { size: 32 },
        })
        .unwrap();
        assert!(c.busy());
        for cycle in 0..200 {
            c.clock(cycle);
        }
        c.pop_reply(Client::Dac).expect("reply ready");
        assert!(!c.busy());
    }

    #[test]
    fn per_client_byte_accounting() {
        let mut c = ctl();
        c.submit(MemRequest {
            id: 1,
            client: Client::Texture(1),
            addr: 0,
            op: MemOp::Read { size: 64 },
        })
        .unwrap();
        for cycle in 0..100 {
            c.clock(cycle);
        }
        assert_eq!(c.client_bytes(Client::Texture(1)), 64);
        assert_eq!(c.client_bytes(Client::Texture(0)), 0);
        assert_eq!(c.bytes_read(), 64);
    }
}
