//! GDDR3-style DRAM channel timing model.
//!
//! Per the paper (§2.2): "The access to ATTILA memory is based on the
//! GDDR3 specification. The memory access unit is a 64 byte transaction (4
//! cycle transfer from a double rate 64 bit DDR channel). [...] The memory
//! modules for each channel are interleaved on a 256 byte basis.
//! Configurable cycle penalties for opening a new memory page, read to
//! write transitions and write to read transitions are implemented."

use attila_sim::{Cycle, SimError};

/// Timing parameters of one DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GddrTiming {
    /// Cycles to transfer one 64-byte transaction (4 for a 64-bit DDR
    /// channel at core clock).
    pub transfer_cycles: Cycle,
    /// Penalty for opening a new page (precharge + activate).
    pub page_open_penalty: Cycle,
    /// Penalty when a read follows a write.
    pub write_to_read_penalty: Cycle,
    /// Penalty when a write follows a read.
    pub read_to_write_penalty: Cycle,
    /// Page (row) size in bytes.
    pub page_bytes: u64,
    /// Number of banks; consecutive pages map to consecutive banks.
    pub banks: usize,
    /// Extra pipeline latency from command issue to first data (CAS-like).
    pub access_latency: Cycle,
}

impl Default for GddrTiming {
    fn default() -> Self {
        GddrTiming {
            transfer_cycles: 4,
            page_open_penalty: 10,
            write_to_read_penalty: 6,
            read_to_write_penalty: 4,
            page_bytes: 4096,
            banks: 8,
            access_latency: 8,
        }
    }
}

/// Direction of a DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Memory → GPU.
    Read,
    /// GPU → memory.
    Write,
}

/// One bank's open-page state.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_page: Option<u64>,
}

/// Cycle-level model of a single GDDR channel servicing 64-byte
/// transactions in order.
///
/// The channel is *occupied* until [`busy_until`](Self::busy_until); the
/// caller (the memory controller) issues one transaction at a time and
/// learns its completion cycle.
///
/// # Examples
///
/// ```
/// use attila_mem::gddr::{Direction, GddrChannel, GddrTiming};
/// let mut ch = GddrChannel::new(GddrTiming::default());
/// let done1 = ch.issue(0, 0, Direction::Read);
/// // Same page, back to back: only the 4-cycle transfer is added.
/// let done2 = ch.issue(done1, 64, Direction::Read);
/// assert_eq!(done2 - done1, 4);
/// ```
#[derive(Debug)]
pub struct GddrChannel {
    timing: GddrTiming,
    banks: Vec<BankState>,
    busy_until: Cycle,
    last_dir: Option<Direction>,
    total_transactions: u64,
    total_busy_cycles: u64,
    page_misses: u64,
    turnarounds: u64,
}

impl GddrChannel {
    /// Creates an idle channel.
    pub fn new(timing: GddrTiming) -> Self {
        GddrChannel {
            banks: vec![BankState::default(); timing.banks],
            timing,
            busy_until: 0,
            last_dir: None,
            total_transactions: 0,
            total_busy_cycles: 0,
            page_misses: 0,
            turnarounds: 0,
        }
    }

    /// The timing configuration.
    pub fn timing(&self) -> &GddrTiming {
        &self.timing
    }

    /// First cycle at which a new transaction may start.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Issues a 64-byte transaction at channel-local address `addr`, no
    /// earlier than `cycle`. Returns the cycle at which the data transfer
    /// completes (for reads, when data is available; for writes, when the
    /// bus frees).
    pub fn issue(&mut self, cycle: Cycle, addr: u64, dir: Direction) -> Cycle {
        let start = cycle.max(self.busy_until);
        let page = addr / self.timing.page_bytes;
        let bank = (page as usize) % self.timing.banks;

        let mut penalty = 0;
        if self.banks[bank].open_page != Some(page) {
            penalty += self.timing.page_open_penalty;
            self.banks[bank].open_page = Some(page);
            self.page_misses += 1;
        }
        match (self.last_dir, dir) {
            (Some(Direction::Read), Direction::Write) => {
                penalty += self.timing.read_to_write_penalty;
                self.turnarounds += 1;
            }
            (Some(Direction::Write), Direction::Read) => {
                penalty += self.timing.write_to_read_penalty;
                self.turnarounds += 1;
            }
            _ => {}
        }
        self.last_dir = Some(dir);

        let done = start + penalty + self.timing.transfer_cycles;
        self.total_busy_cycles += done - start;
        self.busy_until = done;
        self.total_transactions += 1;
        // Reads additionally see the access latency before data arrives,
        // but the bus frees at `done`; the extra latency is added by the
        // controller when scheduling the reply.
        done
    }

    /// Extra cycles between bus completion and read data availability.
    pub fn read_latency(&self) -> Cycle {
        self.timing.access_latency
    }

    /// Transactions serviced so far.
    pub fn total_transactions(&self) -> u64 {
        self.total_transactions
    }

    /// Cycles the channel spent busy.
    pub fn total_busy_cycles(&self) -> u64 {
        self.total_busy_cycles
    }

    /// Transactions that had to open a new page.
    pub fn page_misses(&self) -> u64 {
        self.page_misses
    }

    /// Read↔write direction turnarounds.
    pub fn turnarounds(&self) -> u64 {
        self.turnarounds
    }

    /// Captures the channel's mutable state (open pages, bus occupancy,
    /// last direction, counters) as plain data for checkpointing. All of
    /// it shapes the timing of *future* transactions, so a bit-identical
    /// resume must restore every field.
    pub fn save_state(&self) -> GddrState {
        GddrState {
            open_pages: self.banks.iter().map(|b| b.open_page).collect(),
            busy_until: self.busy_until,
            last_dir: self.last_dir,
            total_transactions: self.total_transactions,
            total_busy_cycles: self.total_busy_cycles,
            page_misses: self.page_misses,
            turnarounds: self.turnarounds,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the bank counts
    /// differ (the checkpoint came from a different timing configuration).
    pub fn load_state(&mut self, state: &GddrState) -> Result<(), SimError> {
        if state.open_pages.len() != self.banks.len() {
            return Err(SimError::CheckpointMismatch {
                reason: format!(
                    "DRAM channel has {} banks, checkpoint carries {}",
                    self.banks.len(),
                    state.open_pages.len()
                ),
            });
        }
        for (bank, page) in self.banks.iter_mut().zip(&state.open_pages) {
            bank.open_page = *page;
        }
        self.busy_until = state.busy_until;
        self.last_dir = state.last_dir;
        self.total_transactions = state.total_transactions;
        self.total_busy_cycles = state.total_busy_cycles;
        self.page_misses = state.page_misses;
        self.turnarounds = state.turnarounds;
        Ok(())
    }
}

/// Plain-data snapshot of a [`GddrChannel`], for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GddrState {
    /// Per-bank open page, in bank order.
    pub open_pages: Vec<Option<u64>>,
    /// First cycle at which a new transaction may start.
    pub busy_until: Cycle,
    /// Direction of the last issued transaction.
    pub last_dir: Option<Direction>,
    /// Transactions serviced so far.
    pub total_transactions: u64,
    /// Cycles spent busy so far.
    pub total_busy_cycles: u64,
    /// Page-open penalties paid so far.
    pub page_misses: u64,
    /// Direction turnarounds so far.
    pub turnarounds: u64,
}

/// Maps a global GPU address to `(channel, channel-local address)` with
/// 256-byte interleaving, as in the paper.
pub fn interleave(addr: u64, channels: usize, granularity: u64) -> (usize, u64) {
    let block = addr / granularity;
    let channel = (block % channels as u64) as usize;
    let local_block = block / channels as u64;
    (channel, local_block * granularity + addr % granularity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> GddrTiming {
        GddrTiming::default()
    }

    #[test]
    fn same_page_sequential_reads_are_pipelined() {
        let mut ch = GddrChannel::new(t());
        let d1 = ch.issue(0, 0, Direction::Read);
        assert_eq!(d1, 10 + 4, "first access opens the page");
        let d2 = ch.issue(d1, 64, Direction::Read);
        assert_eq!(d2 - d1, 4, "same page: transfer only");
        assert_eq!(ch.page_misses(), 1);
    }

    #[test]
    fn page_change_costs_open_penalty() {
        let mut ch = GddrChannel::new(t());
        let d1 = ch.issue(0, 0, Direction::Read);
        // 8 banks * 4096-byte pages: +8 pages lands in the same bank.
        let d2 = ch.issue(d1, 8 * 4096, Direction::Read);
        assert_eq!(d2 - d1, 10 + 4);
        assert_eq!(ch.page_misses(), 2);
    }

    #[test]
    fn different_banks_keep_pages_open() {
        let mut ch = GddrChannel::new(t());
        let d1 = ch.issue(0, 0, Direction::Read); // bank 0, page 0
        let d2 = ch.issue(d1, 4096, Direction::Read); // bank 1
        assert_eq!(d2 - d1, 10 + 4, "first touch of bank 1 opens its page");
        let d3 = ch.issue(d2, 32, Direction::Read); // bank 0 page still open
        assert_eq!(d3 - d2, 4);
    }

    #[test]
    fn turnaround_penalties() {
        let mut ch = GddrChannel::new(t());
        let d1 = ch.issue(0, 0, Direction::Read);
        let d2 = ch.issue(d1, 64, Direction::Write);
        assert_eq!(d2 - d1, 4 + 4, "read->write penalty");
        let d3 = ch.issue(d2, 128, Direction::Read);
        assert_eq!(d3 - d2, 6 + 4, "write->read penalty");
        assert_eq!(ch.turnarounds(), 2);
    }

    #[test]
    fn channel_serializes_overlapping_requests() {
        let mut ch = GddrChannel::new(t());
        let d1 = ch.issue(0, 0, Direction::Read);
        // Issued "at cycle 0" but the channel is busy until d1.
        let d2 = ch.issue(0, 64, Direction::Read);
        assert!(d2 >= d1 + 4);
    }

    #[test]
    fn utilization_counters() {
        let mut ch = GddrChannel::new(t());
        ch.issue(0, 0, Direction::Read);
        ch.issue(100, 64, Direction::Read);
        assert_eq!(ch.total_transactions(), 2);
        assert_eq!(ch.total_busy_cycles(), 14 + 4);
    }

    #[test]
    fn interleave_spreads_256_byte_blocks() {
        assert_eq!(interleave(0, 4, 256), (0, 0));
        assert_eq!(interleave(256, 4, 256), (1, 0));
        assert_eq!(interleave(512, 4, 256), (2, 0));
        assert_eq!(interleave(768, 4, 256), (3, 0));
        assert_eq!(interleave(1024, 4, 256), (0, 256));
        assert_eq!(interleave(1024 + 100, 4, 256), (0, 356));
    }

    #[test]
    fn interleave_is_a_bijection() {
        let mut seen = std::collections::HashSet::new();
        for addr in (0..4096).step_by(64) {
            let key = interleave(addr, 4, 256);
            assert!(seen.insert(key), "collision at {addr}");
        }
    }
}
