//! GDDR3-style DRAM channel timing model.
//!
//! Per the paper (§2.2): "The access to ATTILA memory is based on the
//! GDDR3 specification. The memory access unit is a 64 byte transaction (4
//! cycle transfer from a double rate 64 bit DDR channel). [...] The memory
//! modules for each channel are interleaved on a 256 byte basis.
//! Configurable cycle penalties for opening a new memory page, read to
//! write transitions and write to read transitions are implemented."
//!
//! The "configurable cycle penalty for opening a new memory page" is
//! modeled with real per-bank state rather than a flat penalty: each
//! [`GddrChannel`] owns [`GddrTiming::banks`] independent [`Bank`] FSMs,
//! so whether an access pays nothing (row hit), one ACTIVATE (row miss)
//! or a PRECHARGE + ACTIVATE (row conflict) depends on which row each
//! bank currently holds open. See [`bank`](crate::bank) for the FSM and
//! DESIGN.md §19 for the timing derivation.

use crate::bank::{Bank, BankAccess, BankSnapshot, BankTiming, RowOutcome};
use attila_sim::{Cycle, SimError};

/// Timing parameters of one DRAM channel.
///
/// All values are in core-clock cycles (the paper scales GDDR3 datasheet
/// timings to the GPU core clock). The bank-level parameters
/// ([`t_rcd`](Self::t_rcd), [`t_rp`](Self::t_rp), [`t_rc`](Self::t_rc))
/// replace the older flat `page_open_penalty`: a row miss costs `t_rcd`,
/// a row conflict costs `t_rp + t_rcd`, both further bounded by `t_rc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GddrTiming {
    /// Cycles to transfer one 64-byte transaction (4 for a 64-bit DDR
    /// channel at core clock).
    pub transfer_cycles: Cycle,
    /// tRCD — cycles from ACTIVATE (row open) until a column command may
    /// issue. A row *miss* (bank idle) pays exactly this.
    pub t_rcd: Cycle,
    /// tRP — cycles from PRECHARGE (row close) until the bank can accept
    /// a new ACTIVATE. A row *conflict* pays `t_rp + t_rcd`.
    pub t_rp: Cycle,
    /// tRC — minimum cycles between two ACTIVATEs to the same bank;
    /// bounds row thrashing even when `t_rp + t_rcd` would allow faster
    /// reopening.
    pub t_rc: Cycle,
    /// Penalty when a read follows a write (bus turnaround, overlapped
    /// with any row opening the access also needs).
    pub write_to_read_penalty: Cycle,
    /// Penalty when a write follows a read.
    pub read_to_write_penalty: Cycle,
    /// Page (row) size in bytes.
    pub page_bytes: u64,
    /// Number of banks; consecutive pages map to consecutive banks.
    pub banks: usize,
    /// Extra pipeline latency from command issue to first data (CAS-like),
    /// applied by the controller to read replies only.
    pub access_latency: Cycle,
}

impl Default for GddrTiming {
    fn default() -> Self {
        GddrTiming {
            transfer_cycles: 4,
            t_rcd: 6,
            t_rp: 6,
            t_rc: 16,
            write_to_read_penalty: 6,
            read_to_write_penalty: 4,
            page_bytes: 4096,
            banks: 8,
            access_latency: 8,
        }
    }
}

impl GddrTiming {
    /// The bank-level subset of the timing, as the [`Bank`] FSM wants it.
    pub fn bank_timing(&self) -> BankTiming {
        BankTiming { t_rcd: self.t_rcd, t_rp: self.t_rp, t_rc: self.t_rc }
    }
}

/// Direction of a DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Memory → GPU.
    Read,
    /// GPU → memory.
    Write,
}

/// The resolved schedule of one issued transaction — everything the
/// controller needs for reply timing, statistics, and trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueReport {
    /// Cycle the transaction reached the head of the channel (bus free).
    pub start: Cycle,
    /// Cycle the data transfer begins (row open, turnaround served).
    pub data_start: Cycle,
    /// Cycle the data transfer completes and the bus frees. For reads the
    /// controller adds [`GddrChannel::read_latency`] before the reply.
    pub done: Cycle,
    /// Bank the transaction hit.
    pub bank: usize,
    /// Row (global page number) the transaction addressed.
    pub row: u64,
    /// How the bank's row buffer treated the access.
    pub outcome: RowOutcome,
}

/// Cycle-level model of a single GDDR channel servicing 64-byte
/// transactions in order.
///
/// The channel is *occupied* until [`busy_until`](Self::busy_until); the
/// caller (the memory controller) issues one transaction at a time and
/// learns its completion cycle. Row-buffer state lives in per-bank FSMs
/// ([`Bank`]); the channel adds the shared data-bus serialization and the
/// read↔write turnaround on top.
///
/// # Examples
///
/// ```
/// use attila_mem::gddr::{Direction, GddrChannel, GddrTiming};
/// let mut ch = GddrChannel::new(GddrTiming::default());
/// let r1 = ch.issue(0, 0, Direction::Read);
/// // Same row, back to back: only the 4-cycle transfer is added.
/// let r2 = ch.issue(r1.done, 64, Direction::Read);
/// assert_eq!(r2.done - r1.done, 4);
/// ```
#[derive(Debug)]
pub struct GddrChannel {
    timing: GddrTiming, // state: derived — timing parameters fixed at construction
    banks: Vec<Bank>,
    busy_until: Cycle,
    last_dir: Option<Direction>,
    total_transactions: u64,
    total_busy_cycles: u64,
    turnarounds: u64,
}

impl GddrChannel {
    /// Creates an idle channel with all banks closed.
    pub fn new(timing: GddrTiming) -> Self {
        GddrChannel {
            banks: vec![Bank::new(); timing.banks],
            timing,
            busy_until: 0,
            last_dir: None,
            total_transactions: 0,
            total_busy_cycles: 0,
            turnarounds: 0,
        }
    }

    /// The timing configuration.
    pub fn timing(&self) -> &GddrTiming {
        &self.timing
    }

    /// First cycle at which a new transaction may start.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Maps a channel-local address to `(bank, row)`. Rows are global
    /// page numbers (they also identify the bank), so two addresses in
    /// the same page share both coordinates.
    pub fn decode(&self, addr: u64) -> (usize, u64) {
        let row = addr / self.timing.page_bytes;
        let bank = (row as usize) % self.timing.banks;
        (bank, row)
    }

    /// Non-mutating probe: would a transaction at `addr` find its row
    /// open (or already opening)? Used by the controller's row-hit-first
    /// arbitration to pick the cheapest ready request without disturbing
    /// bank state.
    pub fn would_hit(&self, addr: u64) -> bool {
        let (bank, row) = self.decode(addr);
        self.banks[bank].open_row() == Some(row)
    }

    /// Issues a 64-byte transaction at channel-local address `addr`, no
    /// earlier than `cycle`, and returns the resolved schedule.
    ///
    /// The transaction starts when the data bus frees
    /// (`max(cycle, busy_until)`), then waits for whichever of the bank's
    /// row opening ([`Bank::access`]) and the bus turnaround finishes
    /// later — the two overlap, as in real DRAM where ACTIVATE is a bank
    /// command and turnaround a bus constraint.
    pub fn issue(&mut self, cycle: Cycle, addr: u64, dir: Direction) -> IssueReport {
        let start = cycle.max(self.busy_until);
        let (bank_idx, row) = self.decode(addr);

        let bank_timing = self.timing.bank_timing();
        let BankAccess { outcome, row_ready } =
            self.banks[bank_idx].access(start, row, &bank_timing);

        let mut bus_ready = start;
        match (self.last_dir, dir) {
            (Some(Direction::Read), Direction::Write) => {
                bus_ready += self.timing.read_to_write_penalty;
                self.turnarounds += 1;
            }
            (Some(Direction::Write), Direction::Read) => {
                bus_ready += self.timing.write_to_read_penalty;
                self.turnarounds += 1;
            }
            _ => {}
        }
        self.last_dir = Some(dir);

        let data_start = row_ready.max(bus_ready);
        let done = data_start + self.timing.transfer_cycles;
        self.total_busy_cycles += done - start;
        self.busy_until = done;
        self.total_transactions += 1;
        // Reads additionally see the access latency before data arrives,
        // but the bus frees at `done`; the extra latency is added by the
        // controller when scheduling the reply.
        IssueReport { start, data_start, done, bank: bank_idx, row, outcome }
    }

    /// Extra cycles between bus completion and read data availability.
    pub fn read_latency(&self) -> Cycle {
        self.timing.access_latency
    }

    /// Transactions serviced so far.
    pub fn total_transactions(&self) -> u64 {
        self.total_transactions
    }

    /// Cycles the channel spent busy.
    pub fn total_busy_cycles(&self) -> u64 {
        self.total_busy_cycles
    }

    /// Number of banks on this channel.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// One bank, for per-bank statistics.
    pub fn bank(&self, idx: usize) -> &Bank {
        &self.banks[idx]
    }

    /// Accesses that found their row open, summed over banks.
    pub fn row_hits(&self) -> u64 {
        self.banks.iter().map(|b| b.row_hits()).sum()
    }

    /// Accesses that paid one ACTIVATE, summed over banks.
    pub fn row_misses(&self) -> u64 {
        self.banks.iter().map(|b| b.row_misses()).sum()
    }

    /// Accesses that paid PRECHARGE + ACTIVATE, summed over banks.
    pub fn row_conflicts(&self) -> u64 {
        self.banks.iter().map(|b| b.row_conflicts()).sum()
    }

    /// Read↔write direction turnarounds.
    pub fn turnarounds(&self) -> u64 {
        self.turnarounds
    }

    /// Captures the channel's mutable state (bank FSMs, bus occupancy,
    /// last direction, counters) as plain data for checkpointing. All of
    /// it shapes the timing of *future* transactions, so a bit-identical
    /// resume must restore every field.
    pub fn save_state(&self) -> GddrState {
        GddrState {
            banks: self.banks.iter().map(Bank::snapshot).collect(),
            busy_until: self.busy_until,
            last_dir: self.last_dir,
            total_transactions: self.total_transactions,
            total_busy_cycles: self.total_busy_cycles,
            turnarounds: self.turnarounds,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the bank counts
    /// differ (the checkpoint came from a different timing configuration).
    pub fn load_state(&mut self, state: &GddrState) -> Result<(), SimError> {
        if state.banks.len() != self.banks.len() {
            return Err(SimError::CheckpointMismatch {
                reason: format!(
                    "DRAM channel has {} banks, checkpoint carries {}",
                    self.banks.len(),
                    state.banks.len()
                ),
            });
        }
        for (bank, snap) in self.banks.iter_mut().zip(&state.banks) {
            bank.restore(snap);
        }
        self.busy_until = state.busy_until;
        self.last_dir = state.last_dir;
        self.total_transactions = state.total_transactions;
        self.total_busy_cycles = state.total_busy_cycles;
        self.turnarounds = state.turnarounds;
        Ok(())
    }
}

/// Plain-data snapshot of a [`GddrChannel`], for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GddrState {
    /// Per-bank FSM snapshots, in bank order.
    pub banks: Vec<BankSnapshot>,
    /// First cycle at which a new transaction may start.
    pub busy_until: Cycle,
    /// Direction of the last issued transaction.
    pub last_dir: Option<Direction>,
    /// Transactions serviced so far.
    pub total_transactions: u64,
    /// Cycles spent busy so far.
    pub total_busy_cycles: u64,
    /// Direction turnarounds so far.
    pub turnarounds: u64,
}

/// Maps a global GPU address to `(channel, channel-local address)` with
/// 256-byte interleaving, as in the paper.
pub fn interleave(addr: u64, channels: usize, granularity: u64) -> (usize, u64) {
    let block = addr / granularity;
    let channel = (block % channels as u64) as usize;
    let local_block = block / channels as u64;
    (channel, local_block * granularity + addr % granularity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> GddrTiming {
        GddrTiming::default()
    }

    #[test]
    fn same_row_sequential_reads_are_pipelined() {
        let mut ch = GddrChannel::new(t());
        let r1 = ch.issue(0, 0, Direction::Read);
        assert_eq!(r1.outcome, RowOutcome::Miss);
        assert_eq!(r1.done, 6 + 4, "first access pays one ACTIVATE (tRCD)");
        let r2 = ch.issue(r1.done, 64, Direction::Read);
        assert_eq!(r2.outcome, RowOutcome::Hit);
        assert_eq!(r2.done - r1.done, 4, "same row: transfer only");
        assert_eq!(ch.row_misses(), 1);
        assert_eq!(ch.row_hits(), 1);
    }

    #[test]
    fn row_change_in_same_bank_is_a_conflict() {
        let mut ch = GddrChannel::new(t());
        let r1 = ch.issue(0, 0, Direction::Read);
        // 8 banks * 4096-byte pages: +8 pages lands in the same bank.
        let r2 = ch.issue(r1.done, 8 * 4096, Direction::Read);
        assert_eq!(r2.outcome, RowOutcome::Conflict);
        assert_eq!(r2.bank, r1.bank);
        // PRECHARGE 10..16, ACTIVATE 16..22 (tRC from cycle 0 just met),
        // transfer 22..26.
        assert_eq!(r2.done - r1.done, 6 + 6 + 4);
        assert_eq!(ch.row_conflicts(), 1);
    }

    #[test]
    fn different_banks_keep_rows_open() {
        let mut ch = GddrChannel::new(t());
        let r1 = ch.issue(0, 0, Direction::Read); // bank 0, row 0
        let r2 = ch.issue(r1.done, 4096, Direction::Read); // bank 1
        assert_eq!(r2.outcome, RowOutcome::Miss, "bank 1 is cold, not conflicting");
        assert_eq!(r2.done - r1.done, 6 + 4);
        let r3 = ch.issue(r2.done, 32, Direction::Read); // bank 0 row still open
        assert_eq!(r3.outcome, RowOutcome::Hit);
        assert_eq!(r3.done - r2.done, 4);
    }

    #[test]
    fn turnaround_penalties() {
        let mut ch = GddrChannel::new(t());
        let r1 = ch.issue(0, 0, Direction::Read);
        let r2 = ch.issue(r1.done, 64, Direction::Write);
        assert_eq!(r2.done - r1.done, 4 + 4, "read->write penalty");
        let r3 = ch.issue(r2.done, 128, Direction::Read);
        assert_eq!(r3.done - r2.done, 6 + 4, "write->read penalty");
        assert_eq!(ch.turnarounds(), 2);
    }

    #[test]
    fn turnaround_overlaps_with_row_opening() {
        let mut ch = GddrChannel::new(t());
        let r1 = ch.issue(0, 0, Direction::Read); // bank 0 open
        // Write to a cold bank: ACTIVATE (6) and read->write turnaround
        // (4) run concurrently; the longer one gates the transfer.
        let r2 = ch.issue(r1.done, 4096, Direction::Write);
        assert_eq!(r2.outcome, RowOutcome::Miss);
        assert_eq!(r2.done - r1.done, 6 + 4, "tRCD hides the 4-cycle turnaround");
    }

    #[test]
    fn channel_serializes_overlapping_requests() {
        let mut ch = GddrChannel::new(t());
        let r1 = ch.issue(0, 0, Direction::Read);
        // Issued "at cycle 0" but the channel is busy until r1.done.
        let r2 = ch.issue(0, 64, Direction::Read);
        assert_eq!(r2.start, r1.done);
        assert!(r2.done >= r1.done + 4);
    }

    #[test]
    fn utilization_counters() {
        let mut ch = GddrChannel::new(t());
        ch.issue(0, 0, Direction::Read); // miss: 10 busy cycles
        ch.issue(100, 64, Direction::Read); // hit: 4 busy cycles
        assert_eq!(ch.total_transactions(), 2);
        assert_eq!(ch.total_busy_cycles(), 10 + 4);
    }

    #[test]
    fn would_hit_probe_matches_issue_outcome() {
        let mut ch = GddrChannel::new(t());
        assert!(!ch.would_hit(0), "cold bank");
        let r1 = ch.issue(0, 0, Direction::Read);
        assert!(ch.would_hit(64), "same row now open");
        assert!(!ch.would_hit(8 * 4096), "same bank, other row");
        assert!(!ch.would_hit(4096), "other bank, cold");
        let r2 = ch.issue(r1.done, 64, Direction::Read);
        assert_eq!(r2.outcome, RowOutcome::Hit);
    }

    #[test]
    fn save_restore_round_trips_bank_state() {
        let mut ch = GddrChannel::new(t());
        ch.issue(0, 0, Direction::Read);
        ch.issue(20, 8 * 4096, Direction::Write); // conflict + turnaround
        let state = ch.save_state();
        let mut fresh = GddrChannel::new(t());
        fresh.load_state(&state).unwrap();
        assert_eq!(fresh.save_state(), state);
        // Future timing is identical.
        let a = ch.issue(100, 4096, Direction::Read);
        let b = fresh.issue(100, 4096, Direction::Read);
        assert_eq!(a, b);
    }

    #[test]
    fn load_rejects_mismatched_bank_count() {
        let mut small = GddrChannel::new(GddrTiming { banks: 4, ..t() });
        let state = GddrChannel::new(t()).save_state();
        assert!(small.load_state(&state).is_err());
    }

    #[test]
    fn interleave_spreads_256_byte_blocks() {
        assert_eq!(interleave(0, 4, 256), (0, 0));
        assert_eq!(interleave(256, 4, 256), (1, 0));
        assert_eq!(interleave(512, 4, 256), (2, 0));
        assert_eq!(interleave(768, 4, 256), (3, 0));
        assert_eq!(interleave(1024, 4, 256), (0, 256));
        assert_eq!(interleave(1024 + 100, 4, 256), (0, 356));
    }

    #[test]
    fn interleave_is_a_bijection() {
        let mut seen = std::collections::HashSet::new();
        for addr in (0..4096).step_by(64) {
            let key = interleave(addr, 4, 256);
            assert!(seen.insert(key), "collision at {addr}");
        }
    }
}
