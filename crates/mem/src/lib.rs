//! # attila-mem — memory hierarchy models
//!
//! The memory side of the ATTILA GPU simulator (Moya et al., ISPASS 2006,
//! §2.2), end to end:
//!
//! 1. **Clients** — pipeline boxes (Command Processor, Streamer, texture
//!    units, ROPs, DAC) enqueue 64-byte-max requests with the Memory
//!    Controller ([`controller`]), one queue per client per channel.
//! 2. **Arbitration** — each cycle a channel with a free data bus picks
//!    one request: round-robin over clients, *row hits first* (a request
//!    whose DRAM row is already open preempts the plain rotation; see
//!    [`controller::MemoryController`] and DESIGN.md §19).
//! 3. **DRAM** — the winning request is issued to a [`gddr::GddrChannel`],
//!    which serializes transactions on its data bus and resolves the
//!    row-buffer outcome against per-bank FSMs ([`bank`]): row hit (no
//!    added latency), row miss (one ACTIVATE, tRCD), or row conflict
//!    (PRECHARGE + ACTIVATE, tRP + tRCD), plus read↔write bus turnaround.
//! 4. **Caches** — the texture and ROP pipelines sit behind a generic
//!    set-associative cache timing model ([`cache`]) and the ROP caches
//!    with fast clear and lossless Z compression ([`rop_cache`]), so most
//!    traffic never reaches DRAM.
//!
//! The simulator is execution driven, so the *functional* bytes live in a
//! single [`MemoryImage`]; the timing models decide *when* transactions
//! complete and *how many bytes* move (after compression / fast-clear
//! savings), while reads and writes always see real data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bank;
pub mod cache;
pub mod controller;
pub mod gddr;
pub mod memory;
pub mod rop_cache;

pub use bank::{Bank, BankAccess, BankFsm, BankSnapshot, BankTiming, RowOutcome};
pub use cache::{Cache, CacheConfig, CacheLineState, CacheState, Eviction, Lookup};
pub use controller::{
    Client, MemControllerConfig, MemControllerState, MemOp, MemReply, MemRequest,
    MemoryController, MAX_TRANSACTION,
};
pub use gddr::{Direction, GddrChannel, GddrState, GddrTiming, IssueReport};
pub use memory::{BumpAllocator, MemoryImage};
pub use rop_cache::{BlockState, RopCache, RopCacheState};
