//! # attila-mem — memory hierarchy models
//!
//! The memory side of the ATTILA GPU simulator (Moya et al., ISPASS 2006,
//! §2.2): a GDDR3-style DRAM channel model ([`gddr`]), the Memory
//! Controller with its crossbar queues and PCIe-like system bus
//! ([`controller`]), a generic set-associative cache timing model
//! ([`cache`]), and the ROP caches with fast clear and lossless Z
//! compression ([`rop_cache`]).
//!
//! The simulator is execution driven, so the *functional* bytes live in a
//! single [`MemoryImage`]; the timing models decide *when* transactions
//! complete and *how many bytes* move (after compression / fast-clear
//! savings), while reads and writes always see real data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod controller;
pub mod gddr;
pub mod memory;
pub mod rop_cache;

pub use cache::{Cache, CacheConfig, CacheLineState, CacheState, Eviction, Lookup};
pub use controller::{
    Client, MemControllerConfig, MemControllerState, MemOp, MemReply, MemRequest,
    MemoryController, MAX_TRANSACTION,
};
pub use gddr::{Direction, GddrChannel, GddrState, GddrTiming};
pub use memory::{BumpAllocator, MemoryImage};
pub use rop_cache::{BlockState, RopCache, RopCacheState};
