//! Generic set-associative cache timing model.
//!
//! The texture, Z and colour caches of the baseline ATTILA architecture
//! (Table 2: 16 KB, 4-way, 16 lines of 256 bytes, 1–4 ports) are instances
//! of this model. As in the paper, caches use a method interface attached
//! to their parent box rather than signals, simulating single-cycle tag
//! and data access as implementable at GPU clocks; misses and evictions
//! turn into memory-controller transactions issued by the parent box.
//!
//! The cache is *timing-only*: the data itself lives in the GPU memory
//! image (execution-driven simulation needs a single source of truth),
//! while the cache tracks tags, dirtiness and port pressure to produce
//! exact hit/miss/bandwidth behaviour.

use attila_sim::{Cycle, SimError};

/// Geometry and port configuration of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total data capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Accesses serviced per cycle.
    pub ports: u32,
}

impl CacheConfig {
    /// The paper's Table 2 baseline: 16 KB, 4-way, 256-byte lines.
    pub fn attila_baseline(ports: u32) -> Self {
        CacheConfig { size_bytes: 16 * 1024, ways: 4, line_bytes: 256, ports }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    Invalid,
    /// Fill in flight.
    Pending,
    Valid {
        dirty: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    /// LRU timestamp (monotonic access counter).
    last_use: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line is resident: single-cycle access.
    Hit,
    /// The line is absent; the caller should [`allocate`](Cache::allocate)
    /// and issue a fill.
    Miss,
    /// The line is already being filled (or all ports are taken this
    /// cycle); retry later.
    Blocked,
}

/// A dirty line that must be written back before its frame is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Base address of the evicted line.
    pub line_addr: u64,
}

/// A set-associative, write-back, LRU cache (tags only).
///
/// # Examples
///
/// ```
/// use attila_mem::cache::{Cache, CacheConfig, Lookup};
///
/// let mut cache = Cache::new(CacheConfig::attila_baseline(1), "Texture");
/// assert_eq!(cache.lookup(0, 0x100, false), Lookup::Miss);
/// let evicted = cache.allocate(0x100).unwrap();
/// assert!(evicted.is_none());
/// cache.fill_done(0x100);
/// assert_eq!(cache.lookup(1, 0x100, false), Lookup::Hit);
/// ```
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    name: &'static str, // state: derived — diagnostic label fixed at construction
    lines: Vec<Line>,
    access_counter: u64,
    ports_used_at: (Cycle, u32), // state: transient — per-cycle port occupancy; zeroed on restore
    hits: u64,
    misses: u64,
    blocked: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// sets, or zero ports).
    pub fn new(config: CacheConfig, name: &'static str) -> Self {
        assert!(config.ports > 0, "cache needs at least one port");
        assert!(config.line_bytes.is_power_of_two());
        assert_eq!(
            config.size_bytes % (config.ways * config.line_bytes),
            0,
            "size must be a whole number of sets"
        );
        assert!(config.sets() > 0);
        let lines = vec![
            Line { tag: 0, state: LineState::Invalid, last_use: 0 };
            (config.sets() * config.ways) as usize
        ];
        Cache {
            config,
            name,
            lines,
            access_counter: 0,
            ports_used_at: (0, 0),
            hits: 0,
            misses: 0,
            blocked: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The cache's display name (e.g. `"Texture"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Base address of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes as u64 - 1)
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.config.line_bytes as u64) % self.config.sets() as u64) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64 / self.config.sets() as u64
    }

    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        let w = self.config.ways as usize;
        &mut self.lines[set * w..(set + 1) * w]
    }

    /// Looks up `addr` at `cycle`, consuming a port on a hit. `write`
    /// marks the line dirty on a hit.
    pub fn lookup(&mut self, cycle: Cycle, addr: u64, write: bool) -> Lookup {
        if self.ports_used_at.0 != cycle {
            self.ports_used_at = (cycle, 0);
        }
        if self.ports_used_at.1 >= self.config.ports {
            self.blocked += 1;
            return Lookup::Blocked;
        }
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.access_counter += 1;
        let counter = self.access_counter;
        let mut result = Lookup::Miss;
        for line in self.set_lines(set) {
            if line.tag == tag {
                match line.state {
                    LineState::Valid { dirty } => {
                        line.last_use = counter;
                        if write {
                            line.state = LineState::Valid { dirty: true };
                        } else {
                            line.state = LineState::Valid { dirty };
                        }
                        result = Lookup::Hit;
                    }
                    LineState::Pending => result = Lookup::Blocked,
                    LineState::Invalid => {}
                }
                if result != Lookup::Miss {
                    break;
                }
            }
        }
        match result {
            Lookup::Hit => {
                self.hits += 1;
                self.ports_used_at.1 += 1;
            }
            Lookup::Miss => self.misses += 1,
            Lookup::Blocked => self.blocked += 1,
        }
        result
    }

    /// Reserves a frame for `addr`'s line and marks it pending. Returns
    /// the eviction the caller must perform first (if the victim was
    /// dirty), or `None`. Returns `Err(())` when every way in the set is
    /// pending (no victim available — the caller stalls).
    #[allow(clippy::result_unit_err)]
    pub fn allocate(&mut self, addr: u64) -> Result<Option<Eviction>, ()> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let line_bytes = self.config.line_bytes as u64;
        let sets = self.config.sets() as u64;
        // Victim: an invalid line, else LRU among valid (never pending).
        let lines = self.set_lines(set);
        let mut victim: Option<usize> = None;
        for (i, line) in lines.iter().enumerate() {
            match line.state {
                LineState::Invalid => {
                    victim = Some(i);
                    break;
                }
                LineState::Valid { .. } => {
                    if victim
                        .map(|v| {
                            matches!(lines[v].state, LineState::Valid { .. })
                                && lines[i].last_use < lines[v].last_use
                        })
                        .unwrap_or(true)
                    {
                        victim = Some(i);
                    }
                }
                LineState::Pending => {}
            }
        }
        let Some(v) = victim else { return Err(()) };
        let old = lines[v];
        lines[v] = Line { tag, state: LineState::Pending, last_use: 0 };
        match old.state {
            LineState::Valid { dirty: true } => {
                let victim_addr = (old.tag * sets + set as u64) * line_bytes;
                Ok(Some(Eviction { line_addr: victim_addr }))
            }
            _ => Ok(None),
        }
    }

    /// Marks the pending line for `addr` as filled (memory reply arrived).
    ///
    /// # Panics
    ///
    /// Panics if no pending line matches — a protocol bug in the parent
    /// box.
    pub fn fill_done(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.access_counter += 1;
        let counter = self.access_counter;
        for line in self.set_lines(set) {
            if line.tag == tag && line.state == LineState::Pending {
                line.state = LineState::Valid { dirty: false };
                line.last_use = counter;
                return;
            }
        }
        panic!("fill_done for a line that is not pending (addr {addr:#x})");
    }

    /// Marks the (valid) line containing `addr` dirty without consuming a
    /// port — used by parent boxes that decide writes after their lookup.
    pub fn mark_dirty(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_lines(set) {
            if line.tag == tag {
                if let LineState::Valid { .. } = line.state {
                    line.state = LineState::Valid { dirty: true };
                }
                return;
            }
        }
    }

    /// Invalidates every valid line, returning the dirty ones that must
    /// be written back (used at frame boundaries and for fast clears).
    /// Lines with fills still in flight stay `Pending` so the eventual
    /// [`fill_done`](Self::fill_done) remains legal; callers that need a
    /// truly empty cache must drain their fills first.
    pub fn flush(&mut self) -> Vec<Eviction> {
        let line_bytes = self.config.line_bytes as u64;
        let sets = self.config.sets() as u64;
        let ways = self.config.ways as usize;
        let mut dirty = Vec::new();
        for (i, line) in self.lines.iter_mut().enumerate() {
            match line.state {
                LineState::Valid { dirty: is_dirty } => {
                    if is_dirty {
                        let set = (i / ways) as u64;
                        dirty.push(Eviction { line_addr: (line.tag * sets + set) * line_bytes });
                    }
                    line.state = LineState::Invalid;
                }
                LineState::Pending => {} // fill in flight: keep
                LineState::Invalid => {}
            }
        }
        dirty
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lookups rejected for port pressure or pending fills.
    pub fn blocked_lookups(&self) -> u64 {
        self.blocked
    }

    /// Hit rate in `[0, 1]` (1.0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Captures tags, dirtiness, LRU order and statistics as plain data
    /// for checkpointing. Only meaningful on a drained cache: a line whose
    /// fill is still in flight is recorded as invalid (the checkpointing
    /// layer snapshots at quiescent points, where none exist).
    pub fn save_state(&self) -> CacheState {
        CacheState {
            lines: self
                .lines
                .iter()
                .map(|l| CacheLineState {
                    tag: l.tag,
                    valid: matches!(l.state, LineState::Valid { .. }),
                    dirty: matches!(l.state, LineState::Valid { dirty: true }),
                    last_use: l.last_use,
                })
                .collect(),
            access_counter: self.access_counter,
            hits: self.hits,
            misses: self.misses,
            blocked: self.blocked,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state) into
    /// a cache of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the line counts
    /// differ (the checkpoint came from a different configuration).
    pub fn load_state(&mut self, state: &CacheState) -> Result<(), SimError> {
        if state.lines.len() != self.lines.len() {
            return Err(SimError::CheckpointMismatch {
                reason: format!(
                    "cache `{}` has {} lines, checkpoint carries {}",
                    self.name,
                    self.lines.len(),
                    state.lines.len()
                ),
            });
        }
        for (line, s) in self.lines.iter_mut().zip(&state.lines) {
            line.tag = s.tag;
            line.state = if s.valid {
                LineState::Valid { dirty: s.dirty }
            } else {
                LineState::Invalid
            };
            line.last_use = s.last_use;
        }
        self.access_counter = state.access_counter;
        self.ports_used_at = (0, 0);
        self.hits = state.hits;
        self.misses = state.misses;
        self.blocked = state.blocked;
        Ok(())
    }
}

/// Plain-data snapshot of one cache line, for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLineState {
    /// The line's tag.
    pub tag: u64,
    /// Whether the line holds valid data.
    pub valid: bool,
    /// Whether the line is dirty (implies `valid`).
    pub dirty: bool,
    /// LRU timestamp.
    pub last_use: u64,
}

/// Plain-data snapshot of a whole [`Cache`], for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    /// Every line, in set-major order.
    pub lines: Vec<CacheLineState>,
    /// The monotonic LRU access counter.
    pub access_counter: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Total blocked lookups.
    pub blocked: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64-byte lines = 512 bytes.
        Cache::new(
            CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64, ports: 2 },
            "test",
        )
    }

    fn fill(c: &mut Cache, addr: u64) {
        assert_eq!(c.allocate(addr), Ok(None), "expected clean allocate");
        c.fill_done(addr);
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().sets(), 4);
        assert_eq!(c.line_addr(0x7f), 0x40);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0, 0x100, false), Lookup::Miss);
        fill(&mut c, 0x100);
        assert_eq!(c.lookup(1, 0x100, false), Lookup::Hit);
        assert_eq!(c.lookup(1, 0x13f, false), Lookup::Hit, "same line, second port");
        assert_eq!(c.lookup(1, 0x100, false), Lookup::Blocked, "both ports consumed");
    }

    #[test]
    fn pending_line_blocks_instead_of_missing_again() {
        let mut c = small();
        assert_eq!(c.lookup(0, 0x100, false), Lookup::Miss);
        c.allocate(0x100).unwrap();
        assert_eq!(c.lookup(1, 0x100, false), Lookup::Blocked);
        c.fill_done(0x100);
        assert_eq!(c.lookup(2, 0x100, false), Lookup::Hit);
    }

    #[test]
    fn port_limit_enforced_per_cycle() {
        let mut c = small();
        fill(&mut c, 0x0);
        fill(&mut c, 0x40);
        fill(&mut c, 0x80);
        assert_eq!(c.lookup(5, 0x0, false), Lookup::Hit);
        assert_eq!(c.lookup(5, 0x40, false), Lookup::Hit);
        assert_eq!(c.lookup(5, 0x80, false), Lookup::Blocked, "third access same cycle");
        assert_eq!(c.lookup(6, 0x80, false), Lookup::Hit, "next cycle the port frees");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Set 0 holds lines with addr % (4*64) == 0: 0x000, 0x100, 0x200...
        fill(&mut c, 0x000);
        fill(&mut c, 0x100);
        assert_eq!(c.lookup(1, 0x000, false), Lookup::Hit); // 0x000 now MRU
        // Allocate a third line in set 0: must evict 0x100.
        assert_eq!(c.allocate(0x200), Ok(None));
        c.fill_done(0x200);
        assert_eq!(c.lookup(2, 0x000, false), Lookup::Hit, "MRU survived");
        assert_eq!(c.lookup(3, 0x100, false), Lookup::Miss, "LRU evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        fill(&mut c, 0x000);
        assert_eq!(c.lookup(1, 0x010, true), Lookup::Hit, "write dirties the line");
        fill(&mut c, 0x100);
        let ev = c.allocate(0x200).unwrap();
        assert_eq!(ev, Some(Eviction { line_addr: 0x000 }), "dirty LRU must be written back");
    }

    #[test]
    fn allocate_fails_when_all_ways_pending() {
        let mut c = small();
        assert_eq!(c.allocate(0x000), Ok(None));
        assert_eq!(c.allocate(0x100), Ok(None));
        assert_eq!(c.allocate(0x200), Err(()), "both ways of set 0 pending");
        c.fill_done(0x000);
        assert!(c.allocate(0x200).is_ok(), "a way freed up");
    }

    #[test]
    fn flush_returns_dirty_lines_and_invalidates() {
        let mut c = small();
        fill(&mut c, 0x000);
        fill(&mut c, 0x40);
        c.lookup(1, 0x40, true);
        let dirty = c.flush();
        assert_eq!(dirty, vec![Eviction { line_addr: 0x40 }]);
        assert_eq!(c.lookup(2, 0x000, false), Lookup::Miss, "flushed");
    }

    #[test]
    fn hit_rate_statistics() {
        let mut c = small();
        assert_eq!(c.hit_rate(), 1.0);
        c.lookup(0, 0, false); // miss
        fill(&mut c, 0);
        c.lookup(1, 0, false); // hit
        c.lookup(2, 0, false); // hit
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn attila_baseline_geometry_matches_table2() {
        let c = Cache::new(CacheConfig::attila_baseline(4), "Z");
        assert_eq!(c.config().sets(), 16, "16KB / (4 ways * 256B) = 16 sets");
        assert_eq!(c.config().line_bytes, 256);
    }

    #[test]
    fn flush_keeps_pending_lines() {
        let mut c = small();
        c.allocate(0x40).unwrap(); // fill in flight
        fill(&mut c, 0x00);
        c.lookup(1, 0x00, true);
        let dirty = c.flush();
        assert_eq!(dirty, vec![Eviction { line_addr: 0x00 }]);
        // The pending fill can still complete without panicking.
        c.fill_done(0x40);
        assert_eq!(c.lookup(2, 0x40, false), Lookup::Hit);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for i in 0..4u64 {
            fill(&mut c, i * 64);
        }
        for i in 0..4u64 {
            assert_eq!(c.lookup(10 + i, i * 64, false), Lookup::Hit);
        }
    }
}
