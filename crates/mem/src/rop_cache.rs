//! ROP caches: the Z/stencil and colour caches with fast clear and
//! (for Z) lossless compression.
//!
//! Per the paper (§2.2): the Z cache "implements a lossless compression
//! algorithm with 1:2 and 1:4 ratios to reduce bandwidth usage. Fast Z and
//! Stencil clear, performed in a few cycles and without accessing memory,
//! is also implemented" (based on an ATI Hot3D presentation and patent).
//! The colour cache supports fast colour clear; colour *compression* is
//! listed as future work, so it is off by default but implementable by
//! flipping one flag.
//!
//! Mechanics: the frame buffer is divided into line-sized **blocks** (256
//! bytes = an 8×8 tile of 32-bit values). Per-block state lives on chip:
//!
//! * `Cleared` — the block reads as the clear value; filling it costs no
//!   memory traffic.
//! * `Compressed(level)` — fills/evictions transfer `level.bytes()`.
//! * `Uncompressed` — full 256-byte transfers.
//!
//! Compression ratios are computed from the *actual* data on eviction
//! (execution-driven), using
//! `compress_z_block`-compatible
//! logic supplied by the caller.

use crate::cache::{Cache, CacheConfig, CacheState, Eviction, Lookup};
use crate::memory::MemoryImage;
use attila_sim::{Cycle, SimError};

/// Compression state of one frame-buffer block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Reads as the clear value; no backing-store traffic.
    Cleared,
    /// Stored compressed; fills/evictions move `bytes` bytes.
    Compressed {
        /// Transfer size in bytes (64 or 128 for 1:4 / 1:2).
        bytes: u32,
    },
    /// Full-size transfers.
    Uncompressed,
}

/// A Z or colour cache plus the on-chip block-state memory implementing
/// fast clear and compression bookkeeping.
#[derive(Debug)]
pub struct RopCache {
    cache: Cache,
    line_bytes: u32, // state: derived — geometry constant from construction
    buffer_base: u64,
    block_states: Vec<BlockState>,
    clear_word: u32,
    /// Bytes actually transferred to/from memory (post-compression).
    bytes_transferred: u64,
    /// Bytes a compression-less design would have transferred.
    bytes_uncompressed_equiv: u64,
    fast_clears: u64,
}

impl RopCache {
    /// Creates a ROP cache covering the buffer `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a whole number of cache lines.
    pub fn new(config: CacheConfig, name: &'static str, base: u64, len: u64) -> Self {
        assert_eq!(len % config.line_bytes as u64, 0, "buffer must be whole blocks");
        let blocks = (len / config.line_bytes as u64) as usize;
        RopCache {
            line_bytes: config.line_bytes,
            cache: Cache::new(config, name),
            buffer_base: base,
            block_states: vec![BlockState::Uncompressed; blocks],
            clear_word: 0,
            bytes_transferred: 0,
            bytes_uncompressed_equiv: 0,
            fast_clears: 0,
        }
    }

    /// The underlying tag cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Buffer base address.
    pub fn base(&self) -> u64 {
        self.buffer_base
    }

    /// Covered buffer length in bytes.
    pub fn len(&self) -> u64 {
        self.block_states.len() as u64 * self.line_bytes as u64
    }

    /// Whether the cache covers an empty buffer.
    pub fn is_empty(&self) -> bool {
        self.block_states.is_empty()
    }

    /// The current clear word.
    pub fn clear_word(&self) -> u32 {
        self.clear_word
    }

    fn block_of(&self, addr: u64) -> usize {
        debug_assert!(addr >= self.buffer_base);
        ((addr - self.buffer_base) / self.line_bytes as u64) as usize
    }

    /// The block state covering `addr`.
    pub fn block_state(&self, addr: u64) -> BlockState {
        self.block_states[self.block_of(addr)]
    }

    /// Fast clear: marks every block `Cleared` and fills the functional
    /// image with `clear_word` — a few cycles of work, **zero** memory
    /// transactions in the timing model. Dirty cache lines are discarded
    /// (their contents are dead).
    pub fn fast_clear(&mut self, mem: &mut MemoryImage, clear_word: u32) {
        self.clear_word = clear_word;
        for s in &mut self.block_states {
            *s = BlockState::Cleared;
        }
        let _ = self.cache.flush();
        self.fast_clears += 1;
        let words = (self.block_states.len() * self.line_bytes as usize) / 4;
        for i in 0..words {
            mem.write_u32(self.buffer_base + i as u64 * 4, clear_word);
        }
    }

    /// Cache lookup (see [`Cache::lookup`]).
    pub fn lookup(&mut self, cycle: Cycle, addr: u64, write: bool) -> Lookup {
        self.cache.lookup(cycle, addr, write)
    }

    /// Allocates a frame for `addr` and returns what the parent box must
    /// transfer: `(fill_bytes, eviction)`. A `fill_bytes` of 0 means the
    /// block is in the `Cleared` state and needs no memory read.
    ///
    /// # Errors
    ///
    /// `Err(())` when all ways are pending (caller stalls), as in
    /// [`Cache::allocate`].
    #[allow(clippy::result_unit_err)]
    pub fn allocate(&mut self, addr: u64) -> Result<(u32, Option<Eviction>), ()> {
        let ev = self.cache.allocate(addr)?;
        let fill_bytes = match self.block_state(self.cache.line_addr(addr)) {
            BlockState::Cleared => 0,
            BlockState::Compressed { bytes } => bytes,
            BlockState::Uncompressed => self.line_bytes,
        };
        // A no-fast-clear design would have read the full line even for
        // cleared blocks, so the baseline always accrues.
        self.bytes_transferred += fill_bytes as u64;
        self.bytes_uncompressed_equiv += self.line_bytes as u64;
        Ok((fill_bytes, ev))
    }

    /// Marks the fill complete (or instantly for cleared blocks).
    pub fn fill_done(&mut self, addr: u64) {
        self.cache.fill_done(addr);
    }

    /// Marks the line containing `addr` dirty (see [`Cache::mark_dirty`]).
    pub fn mark_dirty(&mut self, addr: u64) {
        self.cache.mark_dirty(addr);
    }

    /// Called when evicting a dirty line: the parent passes the line's
    /// *actual* 64 words; the compressor (e.g.
    /// `compress_z_block` (attila-emu)) decides the achieved
    /// size via `compressed_size`. Updates block state and bandwidth
    /// accounting, returning the bytes to write back.
    pub fn evict_dirty(
        &mut self,
        line_addr: u64,
        compressed_size: Option<u32>,
    ) -> u32 {
        let bytes = compressed_size.unwrap_or(self.line_bytes).min(self.line_bytes);
        let idx = self.block_of(line_addr);
        self.block_states[idx] = if bytes < self.line_bytes {
            BlockState::Compressed { bytes }
        } else {
            BlockState::Uncompressed
        };
        self.bytes_transferred += bytes as u64;
        self.bytes_uncompressed_equiv += self.line_bytes as u64;
        bytes
    }

    /// Flushes the cache, returning dirty lines the parent must write
    /// back (end of frame).
    pub fn flush(&mut self) -> Vec<Eviction> {
        self.cache.flush()
    }

    /// Bytes moved to/from memory after compression/fast-clear savings.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Bytes an uncompressed, no-fast-clear design would have moved.
    pub fn bytes_uncompressed_equiv(&self) -> u64 {
        self.bytes_uncompressed_equiv
    }

    /// Number of fast clears performed.
    pub fn fast_clears(&self) -> u64 {
        self.fast_clears
    }

    /// Effective bandwidth compression ratio achieved so far (≥ 1).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_transferred == 0 {
            1.0
        } else {
            self.bytes_uncompressed_equiv as f64 / self.bytes_transferred as f64
        }
    }

    /// Captures the cache tags plus the on-chip block-state memory and
    /// bandwidth accounting as plain data for checkpointing. The snapshot
    /// carries the covered `(base, len)` range so the parent box can
    /// rebuild an identically bound cache before loading.
    pub fn save_state(&self) -> RopCacheState {
        RopCacheState {
            cache: self.cache.save_state(),
            base: self.buffer_base,
            len: self.len(),
            block_states: self.block_states.clone(),
            clear_word: self.clear_word,
            bytes_transferred: self.bytes_transferred,
            bytes_uncompressed_equiv: self.bytes_uncompressed_equiv,
            fast_clears: self.fast_clears,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state) into
    /// a cache covering the same buffer with the same geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] on any shape mismatch.
    pub fn load_state(&mut self, state: &RopCacheState) -> Result<(), SimError> {
        if state.base != self.buffer_base || state.block_states.len() != self.block_states.len() {
            return Err(SimError::CheckpointMismatch {
                reason: format!(
                    "ROP cache covers {:#x}+{} blocks, checkpoint carries {:#x}+{}",
                    self.buffer_base,
                    self.block_states.len(),
                    state.base,
                    state.block_states.len()
                ),
            });
        }
        self.cache.load_state(&state.cache)?;
        self.block_states.copy_from_slice(&state.block_states);
        self.clear_word = state.clear_word;
        self.bytes_transferred = state.bytes_transferred;
        self.bytes_uncompressed_equiv = state.bytes_uncompressed_equiv;
        self.fast_clears = state.fast_clears;
        Ok(())
    }
}

/// Plain-data snapshot of a [`RopCache`], for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RopCacheState {
    /// The inner tag cache's state.
    pub cache: CacheState,
    /// Covered buffer base address.
    pub base: u64,
    /// Covered buffer length in bytes.
    pub len: u64,
    /// Per-block compression state, in block order.
    pub block_states: Vec<BlockState>,
    /// The current clear word.
    pub clear_word: u32,
    /// Bytes actually transferred so far.
    pub bytes_transferred: u64,
    /// Uncompressed-equivalent bytes so far.
    pub bytes_uncompressed_equiv: u64,
    /// Fast clears performed so far.
    pub fast_clears: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rop() -> (RopCache, MemoryImage) {
        let config = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 256, ports: 4 };
        let mem = MemoryImage::new(64 * 1024);
        (RopCache::new(config, "Z", 0x1000, 16 * 256), mem)
    }

    #[test]
    fn fast_clear_marks_blocks_and_fills_memory() {
        let (mut z, mut mem) = rop();
        z.fast_clear(&mut mem, 0x00ff_ffff);
        assert_eq!(z.block_state(0x1000), BlockState::Cleared);
        assert_eq!(z.block_state(0x1000 + 15 * 256), BlockState::Cleared);
        assert_eq!(mem.read_u32(0x1000), 0x00ff_ffff);
        assert_eq!(mem.read_u32(0x1000 + 16 * 256 - 4), 0x00ff_ffff);
        assert_eq!(z.fast_clears(), 1);
    }

    #[test]
    fn cleared_block_fill_costs_no_bandwidth() {
        let (mut z, mut mem) = rop();
        z.fast_clear(&mut mem, 0);
        assert_eq!(z.lookup(0, 0x1000, false), Lookup::Miss);
        let (fill, ev) = z.allocate(0x1000).unwrap();
        assert_eq!(fill, 0, "cleared block: no memory read");
        assert!(ev.is_none());
        z.fill_done(0x1000);
        assert_eq!(z.lookup(1, 0x1000, true), Lookup::Hit);
        assert_eq!(z.bytes_transferred(), 0);
    }

    #[test]
    fn compressed_eviction_reduces_traffic() {
        let (mut z, mut mem) = rop();
        z.fast_clear(&mut mem, 0);
        z.allocate(0x1000).unwrap();
        z.fill_done(0x1000);
        z.lookup(0, 0x1000, true);
        // Evict with 1:4 compression achieved.
        let written = z.evict_dirty(0x1000, Some(64));
        assert_eq!(written, 64);
        assert_eq!(z.block_state(0x1000), BlockState::Compressed { bytes: 64 });
        // A later fill of the same block reads only 64 bytes.
        let (fill, _) = z.allocate(0x1000).unwrap();
        assert_eq!(fill, 64);
        assert!(z.compression_ratio() > 3.9, "ratio {}", z.compression_ratio());
    }

    #[test]
    fn incompressible_eviction_stays_full_size() {
        let (mut z, _mem) = rop();
        let written = z.evict_dirty(0x1100, None);
        assert_eq!(written, 256);
        assert_eq!(z.block_state(0x1100), BlockState::Uncompressed);
    }

    #[test]
    fn uncompressed_block_fill_is_full_line() {
        let (mut z, _mem) = rop();
        let (fill, _) = z.allocate(0x1200).unwrap();
        assert_eq!(fill, 256);
    }

    #[test]
    fn second_fast_clear_resets_compressed_state() {
        let (mut z, mut mem) = rop();
        z.evict_dirty(0x1000, Some(128));
        assert_eq!(z.block_state(0x1000), BlockState::Compressed { bytes: 128 });
        z.fast_clear(&mut mem, 7);
        assert_eq!(z.block_state(0x1000), BlockState::Cleared);
        assert_eq!(z.clear_word(), 7);
    }
}
