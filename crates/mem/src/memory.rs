//! Backing storage: the GPU and system memory images.
//!
//! ATTILA is execution driven: the bytes a unit reads from memory are the
//! bytes an earlier unit (or the Command Processor) actually wrote. The
//! [`MemoryImage`] holds those bytes; all *timing* lives in the
//! [`controller`](crate::controller) and [`gddr`](crate::gddr) models.

use std::fmt;

/// A flat byte-addressable memory image.
///
/// # Examples
///
/// ```
/// use attila_mem::MemoryImage;
/// let mut mem = MemoryImage::new(1024);
/// mem.write(64, &[1, 2, 3]);
/// assert_eq!(mem.read_vec(64, 3), vec![1, 2, 3]);
/// ```
pub struct MemoryImage {
    bytes: Vec<u8>,
}

impl MemoryImage {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        MemoryImage { bytes: vec![0; size] }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (always a simulator bug: the
    /// driver allocates all regions up front).
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let start = addr as usize;
        buf.copy_from_slice(&self.bytes[start..start + buf.len()]);
    }

    /// Reads `len` bytes into a fresh `Vec`.
    pub fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(addr, &mut v);
        v
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let start = addr as usize;
        self.bytes[start..start + data.len()].copy_from_slice(data);
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Fills `[addr, addr + len)` with `value`.
    pub fn fill(&mut self, addr: u64, len: usize, value: u8) {
        let start = addr as usize;
        self.bytes[start..start + len].fill(value);
    }

    /// Borrow of the whole image (e.g. for the golden-model texture path).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Debug for MemoryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryImage").field("size", &self.bytes.len()).finish()
    }
}

/// A simple bump allocator over a memory image — the driver's low-level
/// "basic memory allocation" service (paper §4).
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    next: u64,
    limit: u64,
}

impl BumpAllocator {
    /// Manages the address range `[base, limit)`.
    pub fn new(base: u64, limit: u64) -> Self {
        assert!(base <= limit);
        BumpAllocator { next: base, limit }
    }

    /// Allocates `size` bytes aligned to `align` (a power of two).
    /// Returns `None` when the region is exhausted.
    pub fn alloc(&mut self, size: u64, align: u64) -> Option<u64> {
        assert!(align.is_power_of_two());
        let addr = (self.next + align - 1) & !(align - 1);
        if addr + size > self.limit {
            return None;
        }
        self.next = addr + size;
        Some(addr)
    }

    /// Bytes still available (ignoring alignment padding).
    pub fn remaining(&self) -> u64 {
        self.limit - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = MemoryImage::new(256);
        m.write(10, &[0xaa, 0xbb]);
        assert_eq!(m.read_vec(10, 2), vec![0xaa, 0xbb]);
        assert_eq!(m.read_vec(12, 1), vec![0]);
    }

    #[test]
    fn u32_round_trip() {
        let mut m = MemoryImage::new(64);
        m.write_u32(4, 0xdead_beef);
        assert_eq!(m.read_u32(4), 0xdead_beef);
    }

    #[test]
    fn fill_sets_range() {
        let mut m = MemoryImage::new(64);
        m.fill(8, 16, 0x7f);
        assert_eq!(m.read_vec(7, 1), vec![0]);
        assert_eq!(m.read_vec(8, 16), vec![0x7f; 16]);
        assert_eq!(m.read_vec(24, 1), vec![0]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let m = MemoryImage::new(16);
        let mut b = [0u8; 4];
        m.read(14, &mut b);
    }

    #[test]
    fn bump_allocator_aligns() {
        let mut a = BumpAllocator::new(100, 1000);
        let p1 = a.alloc(10, 64).unwrap();
        assert_eq!(p1 % 64, 0);
        let p2 = a.alloc(10, 64).unwrap();
        assert!(p2 >= p1 + 10);
        assert_eq!(p2 % 64, 0);
    }

    #[test]
    fn bump_allocator_exhausts() {
        let mut a = BumpAllocator::new(0, 128);
        assert!(a.alloc(100, 1).is_some());
        assert!(a.alloc(100, 1).is_none());
        assert!(a.remaining() < 100);
    }
}
