//! Per-bank DRAM state machine.
//!
//! A GDDR3 device is divided into independent *banks*, each holding one
//! open row (page) in its row buffer. Whether an access finds its row
//! already open is the single largest timing factor in a DRAM system:
//!
//! * **row hit** — the bank's row buffer already holds the target row; the
//!   column command can issue immediately and the access costs only the
//!   data transfer.
//! * **row miss** — the bank is idle (no row open); an ACTIVATE must run
//!   first, costing [`BankTiming::t_rcd`] cycles before the column command.
//! * **row conflict** — a *different* row is open; the bank must PRECHARGE
//!   ([`BankTiming::t_rp`] cycles) and then ACTIVATE
//!   ([`BankTiming::t_rcd`] cycles) before the column command, the most
//!   expensive case.
//!
//! [`Bank`] models this as a four-state FSM — [`BankFsm::Idle`],
//! [`BankFsm::Activating`], [`BankFsm::Active`], [`BankFsm::Precharging`]
//! — advanced *event-driven*: state deadlines are computed when an access
//! is issued, not polled every cycle, so the model adds nothing to the
//! simulator's per-cycle cost and composes with the event-horizon
//! scheduler (the channel that owns the banks reports its own completion
//! horizon; a bank never has a pending transition beyond the channel's
//! `busy_until`, so idle-skip can never jump over a bank event — see
//! DESIGN.md §19 for the full argument).

use attila_sim::Cycle;

/// Bank-level timing parameters, in core-clock cycles.
///
/// These mirror the classic DRAM datasheet parameters (scaled to the
/// simulator's core clock, as the paper does for its "configurable cycle
/// penalties"). They are carried inside
/// [`GddrTiming`](crate::gddr::GddrTiming) and surfaced as sweepable knobs
/// in the top-level GPU configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankTiming {
    /// tRCD — RAS-to-CAS delay: cycles from ACTIVATE until a column
    /// command (read/write) may issue to the opened row.
    pub t_rcd: Cycle,
    /// tRP — row precharge time: cycles from PRECHARGE until the bank is
    /// idle and may accept a new ACTIVATE.
    pub t_rp: Cycle,
    /// tRC — row cycle time: minimum cycles between two ACTIVATE commands
    /// to the *same* bank. Bounds how fast one bank can thrash rows even
    /// when tRP + tRCD would allow faster reopening.
    pub t_rc: Cycle,
}

impl Default for BankTiming {
    fn default() -> Self {
        BankTiming { t_rcd: 6, t_rp: 6, t_rc: 16 }
    }
}

/// The bank state machine.
///
/// Timed states carry the cycle at which the transition completes; the
/// FSM advances when the next access [`settle`](Bank::access)s it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankFsm {
    /// No row open; the bank can accept an ACTIVATE.
    Idle,
    /// An ACTIVATE is in flight; `row` is open at `ready_at`.
    Activating {
        /// The row being opened.
        row: u64,
        /// Cycle at which the row buffer holds the row.
        ready_at: Cycle,
    },
    /// `row` is open in the row buffer; column commands may issue.
    Active {
        /// The open row.
        row: u64,
    },
    /// A PRECHARGE is in flight; the bank is idle at `ready_at`.
    Precharging {
        /// Cycle at which the bank returns to [`BankFsm::Idle`].
        ready_at: Cycle,
    },
}

/// Row-buffer outcome of one access, in increasing cost order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RowOutcome {
    /// The target row was already open: column command issues at once.
    Hit,
    /// The bank was idle: one ACTIVATE (tRCD) before the column command.
    Miss,
    /// Another row was open: PRECHARGE (tRP) + ACTIVATE (tRCD) first.
    Conflict,
}

impl RowOutcome {
    /// Short lower-case label (`hit` / `miss` / `conf`), used in trace
    /// events and the timeline visualizer.
    pub fn label(self) -> &'static str {
        match self {
            RowOutcome::Hit => "hit",
            RowOutcome::Miss => "miss",
            RowOutcome::Conflict => "conf",
        }
    }
}

/// The resolved schedule of one bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccess {
    /// How the row buffer treated the access.
    pub outcome: RowOutcome,
    /// First cycle at which a column command may issue (row open and
    /// stable). Equals the request cycle on a hit.
    pub row_ready: Cycle,
}

/// One DRAM bank: FSM state plus occupancy counters.
///
/// # Examples
///
/// ```
/// use attila_mem::bank::{Bank, BankTiming, RowOutcome};
/// let t = BankTiming { t_rcd: 6, t_rp: 6, t_rc: 16 };
/// let mut bank = Bank::new();
/// let first = bank.access(0, 7, &t);
/// assert_eq!(first.outcome, RowOutcome::Miss);
/// assert_eq!(first.row_ready, 6); // one ACTIVATE
/// let again = bank.access(first.row_ready, 7, &t);
/// assert_eq!(again.outcome, RowOutcome::Hit);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    state: BankFsm,
    /// Cycle of the most recent ACTIVATE, for the tRC constraint.
    last_activate: Option<Cycle>,
    row_hits: u64,
    row_misses: u64,
    row_conflicts: u64,
    /// Cycles the FSM spent in timed states (activating + precharging) —
    /// the bank's *occupancy*, as distinct from the channel's bus time.
    busy_cycles: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A closed, idle bank.
    pub fn new() -> Self {
        Bank {
            state: BankFsm::Idle,
            last_activate: None,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
            busy_cycles: 0,
        }
    }

    /// The FSM state as of the last access (timed states may already have
    /// lapsed; they advance on the next access).
    pub fn state(&self) -> BankFsm {
        self.state
    }

    /// The row the bank holds (or is in the middle of opening), if any.
    /// This is the *arbitration* view: a scheduler probing for row hits
    /// treats an in-flight ACTIVATE as open, since by the time the data
    /// bus frees the activation has completed.
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            BankFsm::Active { row } | BankFsm::Activating { row, .. } => Some(row),
            BankFsm::Idle | BankFsm::Precharging { .. } => None,
        }
    }

    /// Advances lapsed timed states: an ACTIVATE whose deadline passed
    /// leaves the bank `Active`, a lapsed PRECHARGE leaves it `Idle`.
    fn settle(&mut self, cycle: Cycle) {
        match self.state {
            BankFsm::Activating { row, ready_at } if ready_at <= cycle => {
                self.state = BankFsm::Active { row };
            }
            BankFsm::Precharging { ready_at } if ready_at <= cycle => {
                self.state = BankFsm::Idle;
            }
            _ => {}
        }
    }

    /// Issues an ACTIVATE no earlier than `when`, respecting tRC against
    /// the previous ACTIVATE, and returns the cycle the row is usable.
    fn activate(&mut self, when: Cycle, row: u64, t: &BankTiming) -> Cycle {
        let earliest = match self.last_activate {
            Some(prev) => when.max(prev.saturating_add(t.t_rc)),
            None => when,
        };
        self.last_activate = Some(earliest);
        let ready_at = earliest + t.t_rcd;
        self.state = BankFsm::Activating { row, ready_at };
        ready_at
    }

    /// Accesses `row` at `cycle`, driving the FSM through whatever
    /// PRECHARGE/ACTIVATE sequence the row buffer requires, and returns
    /// the outcome plus the cycle at which the column command may issue.
    ///
    /// The channel serializes transactions on its data bus, so accesses
    /// arrive in non-decreasing cycle order; the FSM nevertheless handles
    /// an access landing while a timed state is still in flight (the
    /// schedule simply queues behind it).
    pub fn access(&mut self, cycle: Cycle, row: u64, t: &BankTiming) -> BankAccess {
        self.settle(cycle);
        match self.state {
            BankFsm::Active { row: open } if open == row => {
                self.row_hits += 1;
                BankAccess { outcome: RowOutcome::Hit, row_ready: cycle }
            }
            // An ACTIVATE for the same row is still in flight: the access
            // queues behind it. Counted as a hit — the row buffer needs no
            // extra command on its behalf.
            BankFsm::Activating { row: open, ready_at } if open == row => {
                self.row_hits += 1;
                BankAccess { outcome: RowOutcome::Hit, row_ready: ready_at }
            }
            BankFsm::Idle => {
                self.row_misses += 1;
                let row_ready = self.activate(cycle, row, t);
                self.busy_cycles += row_ready - cycle;
                BankAccess { outcome: RowOutcome::Miss, row_ready }
            }
            BankFsm::Precharging { ready_at } => {
                // A precharge is already running (conflict path of an
                // earlier access): wait it out, then activate.
                self.row_misses += 1;
                let row_ready = self.activate(ready_at.max(cycle), row, t);
                self.busy_cycles += row_ready - cycle;
                BankAccess { outcome: RowOutcome::Miss, row_ready }
            }
            BankFsm::Active { .. } | BankFsm::Activating { .. } => {
                // The wrong row is open (or opening): precharge first.
                self.row_conflicts += 1;
                let pre_start = match self.state {
                    BankFsm::Activating { ready_at, .. } => ready_at.max(cycle),
                    _ => cycle,
                };
                let idle_at = pre_start + t.t_rp;
                self.state = BankFsm::Precharging { ready_at: idle_at };
                let row_ready = self.activate(idle_at, row, t);
                self.busy_cycles += row_ready - cycle;
                BankAccess { outcome: RowOutcome::Conflict, row_ready }
            }
        }
    }

    /// Accesses that found their row open.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Accesses that found the bank idle and paid one ACTIVATE.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Accesses that evicted another open row (PRECHARGE + ACTIVATE).
    pub fn row_conflicts(&self) -> u64 {
        self.row_conflicts
    }

    /// Cycles spent activating or precharging — the bank's occupancy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Captures the bank as plain data for checkpointing. Everything here
    /// shapes future timing (the open row decides hit vs conflict, the
    /// last ACTIVATE bounds tRC), so a bit-identical resume must restore
    /// every field.
    pub fn snapshot(&self) -> BankSnapshot {
        BankSnapshot {
            state: self.state,
            last_activate: self.last_activate,
            row_hits: self.row_hits,
            row_misses: self.row_misses,
            row_conflicts: self.row_conflicts,
            busy_cycles: self.busy_cycles,
        }
    }

    /// Restores a snapshot taken by [`snapshot`](Self::snapshot).
    pub fn restore(&mut self, s: &BankSnapshot) {
        self.state = s.state;
        self.last_activate = s.last_activate;
        self.row_hits = s.row_hits;
        self.row_misses = s.row_misses;
        self.row_conflicts = s.row_conflicts;
        self.busy_cycles = s.busy_cycles;
    }
}

/// Plain-data snapshot of a [`Bank`], for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankSnapshot {
    /// The FSM state, including any in-flight transition deadline.
    pub state: BankFsm,
    /// Cycle of the most recent ACTIVATE (tRC bookkeeping).
    pub last_activate: Option<Cycle>,
    /// Row hits so far.
    pub row_hits: u64,
    /// Row misses so far.
    pub row_misses: u64,
    /// Row conflicts so far.
    pub row_conflicts: u64,
    /// Activating + precharging cycles so far.
    pub busy_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> BankTiming {
        BankTiming { t_rcd: 6, t_rp: 6, t_rc: 16 }
    }

    #[test]
    fn first_access_is_a_miss_costing_trcd() {
        let mut b = Bank::new();
        let a = b.access(100, 3, &t());
        assert_eq!(a.outcome, RowOutcome::Miss);
        assert_eq!(a.row_ready, 106);
        assert_eq!(b.row_misses(), 1);
        assert_eq!(b.busy_cycles(), 6);
    }

    #[test]
    fn same_row_is_a_hit_with_zero_added_latency() {
        let mut b = Bank::new();
        let first = b.access(0, 3, &t());
        let a = b.access(first.row_ready + 4, 3, &t());
        assert_eq!(a.outcome, RowOutcome::Hit);
        assert_eq!(a.row_ready, first.row_ready + 4);
        assert_eq!(b.row_hits(), 1);
    }

    #[test]
    fn different_row_is_a_conflict_costing_trp_plus_trcd() {
        let mut b = Bank::new();
        let first = b.access(0, 3, &t()); // ACTIVATE at 0, ready at 6
        let a = b.access(first.row_ready + 20, 4, &t()); // cycle 26
        assert_eq!(a.outcome, RowOutcome::Conflict);
        // PRECHARGE 26..32, ACTIVATE 32..38 (tRC from cycle 0 long lapsed).
        assert_eq!(a.row_ready, 38);
        assert_eq!(b.row_conflicts(), 1);
    }

    #[test]
    fn trc_bounds_back_to_back_activates() {
        let mut b = Bank::new();
        b.access(0, 1, &t()); // ACTIVATE at 0
        let a = b.access(7, 2, &t()); // conflict right after the row opens
        assert_eq!(a.outcome, RowOutcome::Conflict);
        // PRECHARGE 7..13 would allow ACTIVATE at 13, but tRC holds the
        // second ACTIVATE to cycle 0 + 16 = 16; row ready 16 + 6 = 22.
        assert_eq!(a.row_ready, 22);
    }

    #[test]
    fn activating_same_row_queues_as_hit() {
        let mut b = Bank::new();
        let first = b.access(0, 9, &t()); // Activating until 6
        let a = b.access(2, 9, &t());
        assert_eq!(a.outcome, RowOutcome::Hit);
        assert_eq!(a.row_ready, first.row_ready);
    }

    #[test]
    fn open_row_reports_active_and_activating() {
        let mut b = Bank::new();
        assert_eq!(b.open_row(), None);
        b.access(0, 5, &t());
        assert_eq!(b.open_row(), Some(5), "in-flight ACTIVATE counts as open");
        b.access(6, 5, &t());
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let mut b = Bank::new();
        b.access(0, 1, &t());
        b.access(10, 2, &t());
        b.access(40, 2, &t());
        let snap = b.snapshot();
        let mut fresh = Bank::new();
        fresh.restore(&snap);
        assert_eq!(fresh, b);
        // The restored bank times future accesses identically.
        let a = b.access(100, 3, &t());
        let a2 = fresh.access(100, 3, &t());
        assert_eq!(a, a2);
    }

    #[test]
    fn counters_partition_all_accesses() {
        let mut b = Bank::new();
        let rows = [1u64, 1, 2, 2, 1, 3, 3, 3];
        let mut cycle = 0;
        for r in rows {
            let a = b.access(cycle, r, &t());
            cycle = a.row_ready + 4;
        }
        assert_eq!(
            b.row_hits() + b.row_misses() + b.row_conflicts(),
            rows.len() as u64
        );
        assert_eq!(b.row_misses(), 1, "only the cold bank misses; reopens conflict");
        assert_eq!(b.row_conflicts(), 3);
    }
}
