//! Figure-10 methodology at test scale: every synthetic workload rendered
//! by the cycle-level simulator must match the golden-model renderer
//! pixel for pixel, across schedulers and pipeline variants. A mismatch
//! means the timing model reordered, dropped or corrupted work.

use attila::core::config::{GpuConfig, ShaderScheduling};
use attila::core::golden::GoldenRenderer;
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};
use attila::gl::{compile, diff_frames};

const MEM_BYTES: usize = 64 * 1024 * 1024;

fn tiny_params() -> WorkloadParams {
    WorkloadParams { width: 64, height: 64, frames: 1, texture_size: 32, ..Default::default() }
}

fn run_and_compare(config: GpuConfig, trace: &attila::gl::GlTrace) {
    let commands = compile(trace.width, trace.height, &trace.calls).expect("trace compiles");
    let mut config = config;
    config.display.width = trace.width;
    config.display.height = trace.height;
    config.stats.window_cycles = 10_000;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 80_000_000;
    let result = gpu.run_trace(&commands).expect("simulation drains");
    let mut golden = GoldenRenderer::new(MEM_BYTES);
    let golden_frames = golden.run_trace(&commands);
    assert_eq!(result.framebuffers.len(), golden_frames.len(), "frame counts differ");
    for (i, (sim, gold)) in result.framebuffers.iter().zip(&golden_frames).enumerate() {
        let diff = diff_frames(sim, gold);
        assert!(
            diff.identical(),
            "frame {i} differs from the golden model: {diff}"
        );
    }
}

#[test]
fn quickstart_matches_golden() {
    let trace = workloads::quickstart_trace(64, 64);
    run_and_compare(GpuConfig::baseline(), &trace);
}

#[test]
fn doom3_like_matches_golden_baseline() {
    let trace = workloads::doom3_like(tiny_params());
    run_and_compare(GpuConfig::baseline(), &trace);
}

#[test]
fn ut2004_like_matches_golden_baseline() {
    let trace = workloads::ut2004_like(tiny_params());
    run_and_compare(GpuConfig::baseline(), &trace);
}

#[test]
fn doom3_like_matches_golden_case_study_window() {
    let trace = workloads::doom3_like(tiny_params());
    run_and_compare(GpuConfig::case_study(3, ShaderScheduling::ThreadWindow), &trace);
}

#[test]
fn doom3_like_matches_golden_case_study_queue() {
    let trace = workloads::doom3_like(tiny_params());
    run_and_compare(GpuConfig::case_study(1, ShaderScheduling::InOrderQueue), &trace);
}

#[test]
fn ut2004_like_matches_golden_non_unified() {
    let trace = workloads::ut2004_like(tiny_params());
    run_and_compare(GpuConfig::non_unified_baseline(), &trace);
}

#[test]
fn embedded_scene_matches_golden_embedded_gpu() {
    let mut params = tiny_params();
    params.width = 48;
    params.height = 48;
    let trace = workloads::embedded_scene(params);
    run_and_compare(GpuConfig::embedded(), &trace);
}

#[test]
fn hz_disabled_renders_identically() {
    let trace = workloads::doom3_like(tiny_params());
    let mut config = GpuConfig::baseline();
    config.hz.enabled = false;
    run_and_compare(config, &trace);
}

#[test]
fn tile_scan_traversal_renders_identically() {
    let trace = workloads::ut2004_like(tiny_params());
    let mut config = GpuConfig::baseline();
    config.fraggen.traversal = attila::core::config::Traversal::TileScan;
    run_and_compare(config, &trace);
}

#[test]
fn z_compression_disabled_renders_identically() {
    let trace = workloads::doom3_like(tiny_params());
    let mut config = GpuConfig::baseline();
    config.zstencil.compression = false;
    run_and_compare(config, &trace);
}

#[test]
fn fillrate_blended_layers_match_golden() {
    let trace = workloads::fillrate(64, 64, 4, true);
    run_and_compare(GpuConfig::baseline(), &trace);
}

#[test]
fn two_sided_stencil_matches_golden_and_two_pass_volumes() {
    // The paper lists double-sided stencil as future work; we implement
    // it. The one-pass volumes must render the same image as two-pass.
    let mut params = tiny_params();
    let two_pass = workloads::doom3_like(params);
    params.two_sided_stencil = true;
    let one_pass = workloads::doom3_like(params);
    let draws = |t: &attila::gl::GlTrace| {
        t.calls
            .iter()
            .filter(|c| matches!(c, attila::gl::GlCall::DrawElements { .. }))
            .count()
    };
    assert!(draws(&one_pass) < draws(&two_pass), "one-pass volumes issue fewer draws");
    run_and_compare(GpuConfig::baseline(), &one_pass);

    // Same final image either way (same stencil semantics).
    let run = |trace: &attila::gl::GlTrace| {
        let commands = compile(trace.width, trace.height, &trace.calls).unwrap();
        let mut config = GpuConfig::baseline();
        config.display.width = trace.width;
        config.display.height = trace.height;
        let mut gpu = Gpu::new(config);
        gpu.max_cycles = 80_000_000;
        gpu.run_trace(&commands).unwrap().framebuffers
    };
    let a = run(&two_pass);
    let b = run(&one_pass);
    let diff = diff_frames(&a[0], &b[0]);
    assert!(diff.identical(), "volume pass styles diverge: {diff}");
}

#[test]
fn color_compression_matches_golden() {
    let trace = workloads::ut2004_like(tiny_params());
    let mut config = GpuConfig::baseline();
    config.colorwrite.compression = true;
    run_and_compare(config, &trace);
}
