//! The event-horizon scheduler must be invisible: every standard workload
//! run with idle skipping on and off must report identical final cycle
//! counts, identical windowed-statistics CSVs and bit-identical
//! framebuffers. Only wall-clock time may change.

use attila::core::config::{GpuConfig, ShaderScheduling};
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};
use attila::gl::{compile, GlTrace};

fn tiny_params() -> WorkloadParams {
    WorkloadParams { width: 64, height: 64, frames: 1, texture_size: 32, ..Default::default() }
}

/// FNV-1a over a byte slice — a stable, dependency-free framebuffer hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Outcome {
    cycles: u64,
    frames: u64,
    fb_hashes: Vec<u64>,
    stats_csv: String,
    skipped: u64,
    row_traffic: (u64, u64, u64),
}

fn run(config: GpuConfig, trace: &GlTrace, skip: bool) -> Outcome {
    let commands = compile(trace.width, trace.height, &trace.calls).expect("trace compiles");
    let mut config = config;
    config.display.width = trace.width;
    config.display.height = trace.height;
    config.stats.window_cycles = 10_000;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 80_000_000;
    gpu.skip_idle = skip;
    let result = gpu.run_trace(&commands).expect("simulation drains");
    Outcome {
        cycles: result.cycles,
        frames: result.frames,
        fb_hashes: result.framebuffers.iter().map(|f| fnv1a(&f.rgba)).collect(),
        stats_csv: gpu.stats().csv(),
        skipped: gpu.cycles_skipped(),
        row_traffic: (
            gpu.memory().row_hits(),
            gpu.memory().row_misses(),
            gpu.memory().row_conflicts(),
        ),
    }
}

fn assert_equivalent(config: GpuConfig, trace: &GlTrace) {
    let on = run(config.clone(), trace, true);
    let off = run(config, trace, false);
    assert_eq!(off.skipped, 0, "skip disabled must never jump the clock");
    assert_eq!(on.cycles, off.cycles, "final cycle counts diverge");
    assert_eq!(on.frames, off.frames, "frame counts diverge");
    assert_eq!(on.fb_hashes, off.fb_hashes, "framebuffer contents diverge");
    assert_eq!(on.stats_csv, off.stats_csv, "windowed statistics diverge");
    assert_eq!(on.row_traffic, off.row_traffic, "DRAM row-buffer outcomes diverge");
}

/// Non-default DRAM timings must not break skip equivalence: the bank
/// FSM's pending ACTIVATE/PRECHARGE deadlines are bounded by the channel
/// `busy_until`, which the controller's horizon reports, so the scheduler
/// can never jump over a bank-state transition.
#[test]
fn bank_timing_extremes_stay_equivalent() {
    let trace = workloads::doom3_like(tiny_params());
    // Slow DRAM, few banks: long row cycles and frequent conflicts.
    let mut slow = GpuConfig::baseline();
    slow.memory.t_rcd = 14;
    slow.memory.t_rp = 12;
    slow.memory.t_rc = 40;
    slow.memory.banks = 2;
    assert_equivalent(slow, &trace);
    // Fast DRAM, many banks: near-flat timing, almost no conflicts.
    let mut fast = GpuConfig::baseline();
    fast.memory.t_rcd = 1;
    fast.memory.t_rp = 1;
    fast.memory.t_rc = 2;
    fast.memory.banks = 16;
    assert_equivalent(fast, &trace);
}

/// The timing knobs must actually matter: the same workload on slower
/// row timings takes strictly more cycles, deterministically.
#[test]
fn bank_timing_changes_cycle_count() {
    let trace = workloads::quickstart_trace(64, 64);
    let mut slow = GpuConfig::baseline();
    slow.memory.t_rcd = 20;
    slow.memory.t_rp = 20;
    slow.memory.t_rc = 60;
    slow.memory.banks = 2;
    let base = run(GpuConfig::baseline(), &trace, true);
    let slowed = run(slow.clone(), &trace, true);
    assert!(
        slowed.cycles > base.cycles,
        "tRCD 6->20 / tRP 6->20 must cost cycles ({} vs {})",
        slowed.cycles,
        base.cycles
    );
    let again = run(slow, &trace, true);
    assert_eq!(slowed.cycles, again.cycles, "timing sweep must be deterministic");
}

#[test]
fn quickstart_equivalent_and_actually_skips() {
    let trace = workloads::quickstart_trace(64, 64);
    let on = run(GpuConfig::baseline(), &trace, true);
    assert!(
        on.skipped > 0,
        "texture/vertex uploads leave idle stretches the scheduler must find"
    );
    assert_equivalent(GpuConfig::baseline(), &trace);
}

#[test]
fn doom3_like_equivalent_baseline() {
    let trace = workloads::doom3_like(tiny_params());
    assert_equivalent(GpuConfig::baseline(), &trace);
}

#[test]
fn doom3_like_equivalent_case_study() {
    let trace = workloads::doom3_like(tiny_params());
    assert_equivalent(GpuConfig::case_study(3, ShaderScheduling::ThreadWindow), &trace);
}

#[test]
fn ut2004_like_equivalent_baseline() {
    let trace = workloads::ut2004_like(tiny_params());
    assert_equivalent(GpuConfig::baseline(), &trace);
}

#[test]
fn ut2004_like_equivalent_non_unified() {
    let trace = workloads::ut2004_like(tiny_params());
    assert_equivalent(GpuConfig::non_unified_baseline(), &trace);
}

#[test]
fn embedded_scene_equivalent_embedded_gpu() {
    let mut params = tiny_params();
    params.width = 48;
    params.height = 48;
    let trace = workloads::embedded_scene(params);
    assert_equivalent(GpuConfig::embedded(), &trace);
}

#[test]
fn fillrate_equivalent_baseline() {
    let trace = workloads::fillrate(64, 64, 4, true);
    assert_equivalent(GpuConfig::baseline(), &trace);
}

#[test]
fn texture_stream_equivalent_and_mostly_skipped() {
    let mut params = tiny_params();
    params.frames = 2;
    params.texture_size = 64;
    let trace = workloads::texture_stream(params);
    let on = run(GpuConfig::baseline(), &trace, true);
    assert!(
        on.skipped * 2 > on.cycles,
        "streaming uploads should make most cycles skippable, \
         skipped {} of {}",
        on.skipped,
        on.cycles
    );
    assert_equivalent(GpuConfig::baseline(), &trace);
}
