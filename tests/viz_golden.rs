//! `attila viz` byte-identity: the HTML timeline is a pure function of
//! the trace dump, pinned against a committed golden file.
//!
//! Two layers:
//!
//! * a fixed synthetic trace rendered against `tests/data/viz_golden.html`
//!   — any byte of drift (lane order, geometry, palette, escaping) fails.
//!   After an *intentional* renderer change, regenerate the golden with
//!   `BLESS=1 cargo test --test viz_golden` and review the diff;
//! * a real simulation's signal trace rendered twice, and re-rendered
//!   through a dump/parse round trip — all three byte-identical, which is
//!   exactly the check CI runs against the shipped binary.

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::gl::workloads;
use attila::gl::compile;
use attila::sim::{render_html, SignalTrace, TraceEvent, VizOptions};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/viz_golden.html")
}

/// A handcrafted trace covering every cell class: busy lanes with a
/// bubble, and a bank lane with hit/miss/conflict outcomes.
fn synthetic_trace() -> SignalTrace {
    let mut t = SignalTrace::new();
    let mut ev = |cycle: u64, signal: &str, info: &str| {
        t.push(TraceEvent { cycle, signal: signal.into(), info: info.into() });
    };
    for c in 0..40u64 {
        ev(c * 3, "Streamer->PA.vertices", "#v");
        if !(20..=27).contains(&c) {
            ev(c * 3 + 1, "PA->Clipper.triangles", "#t");
        }
    }
    ev(5, "mem.ch0.bank0", "miss R row=0 5..15");
    ev(19, "mem.ch0.bank0", "hit R row=0 19..23");
    ev(23, "mem.ch0.bank0", "hit R row=0 23..27");
    ev(60, "mem.ch0.bank0", "conf W row=4 60..76");
    ev(90, "mem.ch1.bank3", "miss R row=9 90..100");
    t
}

#[test]
fn synthetic_trace_matches_committed_golden() {
    let html = render_html(
        &synthetic_trace(),
        &VizOptions { title: "viz golden".into(), buckets: 48 },
    );
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &html).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file exists (regenerate with BLESS=1 cargo test --test viz_golden)");
    assert!(
        html == golden,
        "rendered HTML drifted from {} ({} vs {} bytes); if the change is \
         intentional, regenerate with BLESS=1 and review the diff",
        path.display(),
        html.len(),
        golden.len(),
    );
}

#[test]
fn simulated_trace_renders_byte_identically() {
    let trace = workloads::quickstart_trace(64, 48);
    let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");
    let mut config = GpuConfig::case_study(1, attila::core::ShaderScheduling::ThreadWindow);
    config.display.width = trace.width;
    config.display.height = trace.height;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 50_000_000;
    let sink = gpu.enable_signal_trace(200_000);
    gpu.run_trace(&commands).expect("drains");

    let dump = sink.borrow().dump();
    assert!(!dump.is_empty(), "the run must record events");
    let opts = VizOptions::default();
    let first = render_html(&SignalTrace::parse(&dump), &opts);
    let second = render_html(&SignalTrace::parse(&dump), &opts);
    assert_eq!(first, second, "same dump, same bytes");
    // Dump -> parse -> dump must be lossless for rendering purposes.
    let redump = SignalTrace::parse(&dump).dump();
    assert_eq!(
        first,
        render_html(&SignalTrace::parse(&redump), &opts),
        "render must survive a dump/parse round trip"
    );
    assert!(first.contains("mem.ch0.bank"), "bank lanes present in a real run");
}
