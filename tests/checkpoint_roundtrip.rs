//! Crash-safe checkpointing: the restore-equals-never-stopped
//! differential and forward-compat rejection of bad checkpoint files.
//!
//! The differential is the whole point of the checkpoint subsystem: a
//! run that is killed at an arbitrary cycle and resumed from its last
//! checkpoint must be **bit-identical** — final cycle count, every
//! statistic, every frame — to the same run never interrupted. It is
//! exercised across 64 seeds with varying checkpoint cadence and kill
//! cycles, with a fault-injection campaign active for a quarter of them
//! (the injector's RNG and delivery progress are part of the snapshot).

use std::path::PathBuf;
use std::sync::OnceLock;

use attila::core::commands::GpuCommand;
use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::core::{Checkpoint, ShaderScheduling};
use attila::gl::{compile, workloads};
use attila::sim::{FaultInjector, FaultPlan, SimError};

const W: u32 = 48;
const H: u32 = 48;

fn scene() -> &'static Vec<GpuCommand> {
    static SCENE: OnceLock<Vec<GpuCommand>> = OnceLock::new();
    SCENE.get_or_init(|| {
        let params = workloads::WorkloadParams {
            width: W,
            height: H,
            frames: 3,
            texture_size: 64,
            detail: 1,
            ..Default::default()
        };
        let trace = workloads::embedded_scene(params);
        compile(trace.width, trace.height, &trace.calls).expect("scene compiles")
    })
}

fn config() -> GpuConfig {
    let mut config = GpuConfig::case_study(1, ShaderScheduling::ThreadWindow);
    config.display.width = W;
    config.display.height = H;
    config
}

fn fault_for(seed: u64) -> FaultInjector {
    // A silent DRAM bit-flip mid-run: the injector's reply counter and
    // RNG are part of the snapshot, so the flip lands exactly once no
    // matter where the run was interrupted.
    FaultInjector::new(seed).with(FaultPlan::FlipBits {
        reply: 10 + seed % 30,
        bit: (seed as u32) % 8,
    })
}

/// Everything that must match bit-for-bit between the two runs.
#[derive(PartialEq)]
struct FinalState {
    cycles: u64,
    cycles_skipped: u64,
    frames: Vec<(u32, u32, Vec<u8>)>,
    stats: Vec<(String, String)>,
    row_traffic: (u64, u64, u64, u64),
}

impl FinalState {
    /// Field-wise assertion with readable diagnostics (a raw derive-Debug
    /// dump of three RGBA frames is useless on failure).
    fn assert_matches(&self, reference: &FinalState, ctx: &str) {
        assert_eq!(self.cycles, reference.cycles, "{ctx}: final cycle diverged");
        assert_eq!(
            self.cycles_skipped, reference.cycles_skipped,
            "{ctx}: idle-skip behaviour diverged"
        );
        assert_eq!(
            self.frames.len(),
            reference.frames.len(),
            "{ctx}: frame count diverged"
        );
        for (i, (r, b)) in self.frames.iter().zip(&reference.frames).enumerate() {
            assert!(r == b, "{ctx}: frame {i} not bit-identical");
        }
        assert_eq!(self.stats, reference.stats, "{ctx}: statistics diverged");
        assert_eq!(
            self.row_traffic, reference.row_traffic,
            "{ctx}: DRAM row-buffer counters diverged (hits, misses, conflicts, turnarounds)"
        );
    }
}

fn final_state(gpu: &Gpu, frames: &[attila::core::FrameDump]) -> FinalState {
    FinalState {
        cycles: gpu.cycle(),
        cycles_skipped: gpu.cycles_skipped(),
        frames: frames
            .iter()
            .map(|f| (f.width, f.height, f.rgba.clone()))
            .collect(),
        stats: gpu
            .stats()
            .names()
            .iter()
            .filter_map(|n| {
                // Exact bit comparison: render totals via their bits, not
                // a rounded format.
                gpu.stats()
                    .total(n)
                    .map(|v| (n.to_string(), format!("{:016x}", v.to_bits())))
            })
            .collect(),
        row_traffic: (
            gpu.memory().row_hits(),
            gpu.memory().row_misses(),
            gpu.memory().row_conflicts(),
            gpu.memory().turnarounds(),
        ),
    }
}

fn tmp_ckpt(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "attila-ckpt-{tag}-{seed}-{}.ckpt",
        std::process::id()
    ))
}

/// The uninterrupted reference run.
fn baseline(faults: Option<u64>) -> (FinalState, u64) {
    let mut gpu = Gpu::new(config());
    gpu.max_cycles = 50_000_000;
    if let Some(seed) = faults {
        gpu.adopt_faults(fault_for(seed)).expect("plan names real hooks");
    }
    let result = gpu.run_trace(scene()).expect("baseline drains");
    let cycles = gpu.cycle();
    (final_state(&gpu, &result.framebuffers), cycles)
}

/// Kill a checkpointing run at `kill_at` simulated cycles (watchdog),
/// then restore from whatever checkpoint survived and run to the end.
/// Returns `None` if the kill landed before the first quiescent point
/// (no checkpoint on disk yet — nothing to resume).
fn killed_and_resumed(seed: u64, kill_at: u64, every: u64, faults: bool) -> Option<FinalState> {
    let tag = if faults { "fault" } else { "plain" };
    let path = tmp_ckpt(tag, seed);
    let _ = std::fs::remove_file(&path);

    // Leg 1: run with checkpoints enabled and a deliberately tiny
    // watchdog — the deterministic stand-in for `kill -9` at a random
    // cycle. The atomic write-rename means the file, if present, is a
    // complete valid checkpoint no matter when the "kill" hit.
    let mut gpu = Gpu::new(config());
    gpu.max_cycles = kill_at;
    gpu.checkpoint_every = Some(every);
    gpu.checkpoint_path = Some(path.clone());
    if faults {
        gpu.adopt_faults(fault_for(seed)).expect("plan names real hooks");
    }
    let first = gpu.run_trace(scene());
    if first.is_ok() {
        // Kill point past the end of the trace: nothing was interrupted.
        let _ = std::fs::remove_file(&path);
        return None;
    }
    if !path.exists() {
        return None;
    }

    // Leg 2: a fresh process would find the checkpoint and resume.
    let ckpt = Checkpoint::read_file(&path).expect("checkpoint readable");
    // A step can land exactly on the watchdog cycle and checkpoint there
    // before the watchdog fires at the top of the next iteration, so the
    // surviving snapshot may sit at kill_at itself — never past it.
    assert!(
        ckpt.body.cycle <= kill_at,
        "checkpoint must not postdate the kill (cycle {} vs kill {})",
        ckpt.body.cycle,
        kill_at
    );
    let injector = faults.then(|| fault_for(seed));
    let mut gpu =
        Gpu::restore(config(), scene(), &ckpt, injector).expect("restore from valid checkpoint");
    gpu.max_cycles = 50_000_000;
    let result = gpu.run_trace(&[]).expect("resumed run drains");
    let _ = std::fs::remove_file(&path);
    Some(final_state(&gpu, &result.framebuffers))
}

#[test]
fn restore_equals_never_stopped_across_64_seeds() {
    let (reference, total_cycles) = baseline(None);
    let (reference_faulty, total_cycles_faulty) = baseline(Some(7));
    assert_eq!(reference.frames.len(), 3);

    let mut resumed_runs = 0;
    for seed in 0..64u64 {
        let faults = seed % 4 == 3; // every 4th seed runs under injection
        let (reference, total) = if faults {
            (&reference_faulty, total_cycles_faulty)
        } else {
            (&reference, total_cycles)
        };
        // Kill cycles sweep 30%..95% of the run; cadence sweeps 50..~2000
        // cycles so the surviving checkpoint lands on different quiescent
        // points across seeds.
        let kill_at = total * (30 + seed) / 100;
        let every = 50 + (seed * 577) % 2000;
        let Some(resumed) = killed_and_resumed(if faults { 7 } else { seed }, kill_at, every, faults)
        else {
            continue;
        };
        resumed_runs += 1;
        resumed.assert_matches(reference, &format!("seed {seed} (faults={faults})"));
    }
    // The sweep must actually exercise restore, not trivially skip.
    assert!(
        resumed_runs >= 48,
        "only {resumed_runs}/64 seeds produced a checkpoint to resume from"
    );
}

#[test]
fn bank_state_survives_restore_under_stressed_timings() {
    // Non-default DRAM timings make the bank FSMs and their counters do
    // real work (few banks -> conflicts; long tRC -> ACTIVATE spacing).
    // The restored run must still be bit-identical, including the
    // row-buffer counters — the FSM states, per-bank counters and the
    // arbitration ring all flow through the checkpoint.
    let mut stressed = config();
    stressed.memory.t_rcd = 10;
    stressed.memory.t_rp = 9;
    stressed.memory.t_rc = 32;
    stressed.memory.banks = 2;
    stressed.validate().expect("stressed timings are a legal config");

    let mut gpu = Gpu::new(stressed.clone());
    gpu.max_cycles = 50_000_000;
    let result = gpu.run_trace(scene()).expect("baseline drains");
    let reference = final_state(&gpu, &result.framebuffers);
    let total = gpu.cycle();
    assert!(
        reference.row_traffic.2 > 0,
        "two banks must force row conflicts, or the test stresses nothing"
    );

    for (kill_pct, every) in [(40, 97), (70, 451)] {
        let path = tmp_ckpt("bank", kill_pct);
        let _ = std::fs::remove_file(&path);
        let mut gpu = Gpu::new(stressed.clone());
        gpu.max_cycles = total * kill_pct / 100;
        gpu.checkpoint_every = Some(every);
        gpu.checkpoint_path = Some(path.clone());
        assert!(gpu.run_trace(scene()).is_err(), "watchdog interrupts the writer leg");

        let ckpt = Checkpoint::read_file(&path).expect("checkpoint readable");
        let mut gpu = Gpu::restore(stressed.clone(), scene(), &ckpt, None)
            .expect("restore under stressed timings");
        gpu.max_cycles = 50_000_000;
        let result = gpu.run_trace(&[]).expect("resumed run drains");
        final_state(&gpu, &result.framebuffers)
            .assert_matches(&reference, &format!("stressed timings, kill at {kill_pct}%"));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn checkpoint_written_at_n_threads_restores_at_m_threads() {
    // Checkpoints capture only architectural state, and every thread
    // count produces bit-identical state — so a checkpoint written by a
    // 4-thread run must restore and finish identically on a serial
    // machine, a 2-thread machine, and an 8-thread machine.
    let (reference, total) = baseline(None);
    let path = tmp_ckpt("threads", 4);
    let _ = std::fs::remove_file(&path);

    let mut gpu = Gpu::with_threads(config(), 4);
    assert!(gpu.threading_active(), "writer leg runs threaded");
    gpu.max_cycles = total * 3 / 5;
    gpu.checkpoint_every = Some(300);
    gpu.checkpoint_path = Some(path.clone());
    let killed = gpu.run_trace(scene());
    assert!(killed.is_err(), "watchdog interrupts the writer leg");
    drop(gpu);

    let ckpt = Checkpoint::read_file(&path).expect("checkpoint written while threaded");
    for threads in [1usize, 2, 8] {
        let mut gpu = Gpu::restore_with_threads(config(), threads, scene(), &ckpt, None)
            .expect("restores at a different thread count");
        gpu.max_cycles = 50_000_000;
        let result = gpu.run_trace(&[]).expect("resumed run drains");
        final_state(&gpu, &result.framebuffers)
            .assert_matches(&reference, &format!("4-thread checkpoint resumed at {threads}"));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_survives_process_exit_semantics() {
    // The file on disk alone — no in-process state — must be enough to
    // finish the run. Everything flows through the serialized JSON.
    let path = tmp_ckpt("exit", 0);
    let _ = std::fs::remove_file(&path);
    let (reference, total) = baseline(None);
    let mut gpu = Gpu::new(config());
    gpu.max_cycles = total * 2 / 3;
    gpu.checkpoint_every = Some(400);
    gpu.checkpoint_path = Some(path.clone());
    let _ = gpu.run_trace(scene());
    drop(gpu); // "process exit"

    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    assert!(text.contains("ATTILA-CKPT"), "file carries the magic");
    let ckpt = Checkpoint::read_file(&path).expect("valid file");
    ckpt.validate_against(&config(), scene()).expect("hashes match");
    let mut gpu = Gpu::restore(config(), scene(), &ckpt, None).expect("restores");
    gpu.max_cycles = 50_000_000;
    let result = gpu.run_trace(&[]).expect("drains");
    final_state(&gpu, &result.framebuffers).assert_matches(&reference, "cold restore");
    let _ = std::fs::remove_file(&path);
}

fn write_valid_checkpoint(tag: &str) -> (PathBuf, String) {
    let path = tmp_ckpt(tag, 99);
    let _ = std::fs::remove_file(&path);
    let mut gpu = Gpu::new(config());
    gpu.max_cycles = 10_000;
    gpu.checkpoint_every = Some(100);
    gpu.checkpoint_path = Some(path.clone());
    let _ = gpu.run_trace(scene());
    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    (path, text)
}

fn expect_mismatch(result: Result<Checkpoint, SimError>, what: &str) {
    match result {
        Err(SimError::CheckpointMismatch { reason }) => {
            assert!(!reason.is_empty(), "{what}: reason must say why");
        }
        Err(other) => panic!("{what}: wrong error type: {other:?}"),
        Ok(_) => panic!("{what}: accepted a bad checkpoint"),
    }
}

#[test]
fn truncated_file_yields_typed_error() {
    let (path, text) = write_valid_checkpoint("trunc");
    for keep in [0, 1, text.len() / 2, text.len() - 1] {
        std::fs::write(&path, &text[..keep]).unwrap();
        expect_mismatch(Checkpoint::read_file(&path), "truncated");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_body_fails_the_crc() {
    let (path, text) = write_valid_checkpoint("corrupt");
    // Flip one digit inside the body (the cycle counter's hex rendering).
    let pos = text.find("\"cycle\"").expect("body has a cycle field");
    let digit = text[pos..].find(|c: char| c.is_ascii_hexdigit()).unwrap() + pos;
    let mut bytes = text.into_bytes();
    bytes[digit] = if bytes[digit] == b'0' { b'1' } else { b'0' };
    std::fs::write(&path, &bytes).unwrap();
    expect_mismatch(Checkpoint::read_file(&path), "corrupted body");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_format_version_is_refused() {
    let (path, text) = write_valid_checkpoint("version");
    let current = format!("\"version\": {}", attila::core::checkpoint::FORMAT_VERSION);
    let bumped = text.replace(&current, "\"version\": 999");
    assert_ne!(bumped, text, "version field must be present to bump");
    std::fs::write(&path, bumped).unwrap();
    match Checkpoint::read_file(&path) {
        Err(SimError::CheckpointVersion { found, supported }) => {
            assert_eq!(found, 999, "error must report the version found in the file");
            assert_eq!(supported, attila::core::checkpoint::FORMAT_VERSION);
        }
        Err(other) => panic!("future version: wrong error type: {other:?}"),
        Ok(_) => panic!("future version: accepted a bad checkpoint"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_magic_is_refused() {
    let (path, text) = write_valid_checkpoint("magic");
    std::fs::write(&path, text.replace("ATTILA-CKPT", "ATTILA-XKPT")).unwrap();
    expect_mismatch(Checkpoint::read_file(&path), "wrong magic");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn config_and_trace_hash_mismatches_are_refused() {
    let (path, _) = write_valid_checkpoint("hashes");
    let ckpt = Checkpoint::read_file(&path).expect("valid file");

    let mut other_config = config();
    other_config.display.width = W * 2;
    match ckpt.validate_against(&other_config, scene()) {
        Err(SimError::CheckpointMismatch { reason }) => {
            assert!(reason.contains("config"), "reason names the config: {reason}");
        }
        other => panic!("different config must be refused, got {other:?}"),
    }

    let mut other_trace = scene().clone();
    other_trace.push(GpuCommand::Swap);
    match ckpt.validate_against(&config(), &other_trace) {
        Err(SimError::CheckpointMismatch { reason }) => {
            assert!(reason.contains("trace"), "reason names the trace: {reason}");
        }
        other => panic!("different trace must be refused, got {other:?}"),
    }

    // Restore enforces the same checks end-to-end.
    match Gpu::restore(other_config, scene(), &ckpt, None) {
        Err(SimError::CheckpointMismatch { .. }) => {}
        other => panic!("restore must refuse a foreign config, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_file_yields_typed_error_not_panic() {
    let path = std::env::temp_dir().join("attila-ckpt-never-written.ckpt");
    let _ = std::fs::remove_file(&path);
    expect_mismatch(Checkpoint::read_file(&path), "missing file");
}
