//! Render-to-texture (a paper §7 future-work item, implemented): draw a
//! scene into a texture, then sample that texture onto the main
//! framebuffer. The cycle simulator must match the golden model and the
//! rendered content must actually show up.

use attila::core::config::GpuConfig;
use attila::core::golden::GoldenRenderer;
use attila::core::gpu::Gpu;
use attila::gl::api::{clear_mask, GlCall, GlPrimitive};
use attila::gl::{compile, diff_frames};

const W: u32 = 64;
const H: u32 = 64;

/// Builds: pass 1 renders a red full-screen triangle into a 32x32
/// texture; pass 2 draws a full-screen quad on the display sampling it.
fn rtt_calls() -> Vec<GlCall> {
    let mut calls = Vec::new();
    // Geometry: full-screen triangle + full-screen quad (pos4 + uv4).
    let tri: Vec<f32> = vec![
        -1.0, -1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, //
        3.0, -1.0, 0.0, 1.0, 2.0, 0.0, 0.0, 1.0, //
        -1.0, 3.0, 0.0, 1.0, 0.0, 2.0, 0.0, 1.0,
    ];
    let quad: Vec<f32> = vec![
        -1.0, -1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, //
        1.0, -1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, //
        1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, //
        -1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0,
    ];
    let as_bytes = |v: &[f32]| v.iter().flat_map(|f| f.to_le_bytes()).collect::<Vec<u8>>();
    calls.push(GlCall::BufferData { id: 1, data: as_bytes(&tri) });
    calls.push(GlCall::BufferData { id: 2, data: as_bytes(&quad) });

    calls.push(GlCall::ProgramString {
        id: 1,
        source: "!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;".into(),
    });
    calls.push(GlCall::ProgramString {
        id: 2,
        source: "!!ATTILAfp1.0\nMOV o0, c0;\nEND;".into(), // flat colour
    });
    calls.push(GlCall::ProgramString {
        id: 3,
        source: "!!ATTILAfp1.0\nTEX r0, i0, texture[0], 2D;\nMOV o0, r0;\nEND;".into(),
    });

    // Pass 1: into the texture.
    calls.push(GlCall::RenderTexture { id: 10, width: 32, height: 32 });
    calls.push(GlCall::SetRenderTarget { texture: 10 });
    calls.push(GlCall::ViewportSet { x: 0, y: 0, width: 32, height: 32 });
    calls.push(GlCall::BindProgram { target_vertex: true, id: 1 });
    calls.push(GlCall::BindProgram { target_vertex: false, id: 2 });
    calls.push(GlCall::ProgramEnvParameter {
        target_vertex: false,
        index: 0,
        value: [1.0, 0.2, 0.1, 1.0],
    });
    calls.push(GlCall::VertexAttribPointer { attr: 0, buffer: 1, components: 4, stride: 32, offset: 0 });
    calls.push(GlCall::VertexAttribPointer { attr: 1, buffer: 1, components: 4, stride: 32, offset: 16 });
    calls.push(GlCall::ClearColor { r: 0.0, g: 0.0, b: 0.3, a: 1.0 });
    calls.push(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
    calls.push(GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 });

    // Pass 2: back to the display, sample the texture.
    calls.push(GlCall::ResetRenderTarget);
    calls.push(GlCall::ViewportSet { x: 0, y: 0, width: W, height: H });
    calls.push(GlCall::BindProgram { target_vertex: false, id: 3 });
    calls.push(GlCall::BindTexture { unit: 0, id: 10 });
    calls.push(GlCall::VertexAttribPointer { attr: 0, buffer: 2, components: 4, stride: 32, offset: 0 });
    calls.push(GlCall::VertexAttribPointer { attr: 1, buffer: 2, components: 4, stride: 32, offset: 16 });
    calls.push(GlCall::ClearColor { r: 0.0, g: 0.0, b: 0.0, a: 1.0 });
    calls.push(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
    calls.push(GlCall::DrawArrays { primitive: GlPrimitive::Quads, count: 4 });
    calls.push(GlCall::SwapBuffers);
    calls
}

#[test]
fn render_to_texture_matches_golden_and_shows_content() {
    let calls = rtt_calls();
    let commands = compile(W, H, &calls).expect("compiles");

    let mut config = GpuConfig::baseline();
    config.display.width = W;
    config.display.height = H;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 50_000_000;
    let result = gpu.run_trace(&commands).expect("drains");

    let mut golden = GoldenRenderer::new(64 * 1024 * 1024);
    let gold = golden.run_trace(&commands);
    let diff = diff_frames(&result.framebuffers[0], &gold[0]);
    assert!(diff.identical(), "RTT frame differs: {diff}");

    // The displayed frame must contain the texture's red content.
    let center = result.framebuffers[0].pixel(W / 2, H / 2).expect("in bounds");
    assert!(center[0] > 200, "sampled render target should be red: {center:?}");
}
