//! End-to-end coverage of features not exercised by the main workloads:
//! the fixed-function pipeline (driver-generated shaders with alpha test
//! and fog), the scissor test, and cube-map + projective texturing.
//! Every case must match the golden model bit for bit.

#![allow(clippy::field_reassign_with_default)]
use std::sync::Arc;

use attila::core::commands::{DrawCall, GpuCommand, Primitive};
use attila::core::config::GpuConfig;
use attila::core::golden::GoldenRenderer;
use attila::core::gpu::Gpu;
use attila::core::state::{AttributeBinding, RenderState, ScissorState};
use attila::emu::asm;
use attila::emu::isa::TexTarget;
use attila::emu::texture::{encode_tiled, TexFormat, TextureDesc};
use attila::emu::vector::Vec4;
use attila::gl::api::{clear_mask, GlCall, GlCap, GlCompare, GlPrimitive, GlTexFormat};
use attila::gl::{compile, diff_frames};

const W: u32 = 64;
const H: u32 = 64;

fn run_both(commands: &[GpuCommand]) -> (attila::core::gpu::FrameDump, attila::core::gpu::FrameDump) {
    let mut config = GpuConfig::baseline();
    config.display.width = W;
    config.display.height = H;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 80_000_000;
    let result = gpu.run_trace(commands).expect("drains");
    let mut golden = GoldenRenderer::new(64 * 1024 * 1024);
    let gold = golden.run_trace(commands);
    (
        result.framebuffers.into_iter().next().expect("frame"),
        gold.into_iter().next().expect("frame"),
    )
}

/// Fixed function with texture + alpha test + fog, driven through the GL
/// layer with no user programs bound — the driver generates the shaders.
#[test]
fn fixed_function_alpha_test_and_fog_match_golden() {
    let mut calls = Vec::new();
    // A half-transparent checker texture (A8-style alpha in RGBA).
    let mut pixels = Vec::new();
    for i in 0..(16 * 16) {
        let on = (i / 4 + i / 64) % 2 == 0;
        pixels.extend_from_slice(&[200, 150, 90, if on { 255 } else { 40 }]);
    }
    calls.push(GlCall::TexImage2D {
        id: 1,
        width: 16,
        height: 16,
        format: GlTexFormat::Rgba8,
        mipmapped: false,
        pixels,
    });
    calls.push(GlCall::BindTexture { unit: 0, id: 1 });
    calls.push(GlCall::Enable(GlCap::Texture2D));
    calls.push(GlCall::Enable(GlCap::AlphaTest));
    calls.push(GlCall::AlphaFunc { func: GlCompare::GEqual, reference: 0.5 });
    calls.push(GlCall::Enable(GlCap::Fog));
    calls.push(GlCall::Fog { color: [0.6, 0.6, 0.7, 1.0], start: 0.0, end: 10.0 });
    calls.push(GlCall::Color4f { r: 1.0, g: 1.0, b: 1.0, a: 1.0 });
    // Geometry: pos (attr 0) + texcoords (attr 2), drawn with a
    // perspective so fog varies.
    let verts: Vec<f32> = vec![
        // x, y, z, w, pad, u, v, pad
        -0.9, -0.9, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, //
        0.9, -0.9, -4.0, 5.0, 0.0, 3.0, 0.0, 0.0, //
        0.0, 0.9, -2.0, 3.0, 0.0, 1.5, 3.0, 0.0,
    ];
    calls.push(GlCall::BufferData {
        id: 2,
        data: verts.iter().flat_map(|f| f.to_le_bytes()).collect(),
    });
    calls.push(GlCall::VertexAttribPointer { attr: 0, buffer: 2, components: 4, stride: 32, offset: 0 });
    calls.push(GlCall::VertexAttribPointer { attr: 2, buffer: 2, components: 2, stride: 32, offset: 20 });
    calls.push(GlCall::ClearColor { r: 0.0, g: 0.0, b: 0.0, a: 1.0 });
    calls.push(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
    calls.push(GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 });
    calls.push(GlCall::SwapBuffers);

    let commands = compile(W, H, &calls).expect("compiles");
    let (sim, gold) = run_both(&commands);
    let diff = diff_frames(&sim, &gold);
    assert!(diff.identical(), "fixed function diverged: {diff}");
    // The alpha test must actually have killed some covered pixels: the
    // covered area shows holes (background) inside the triangle.
    let holes = (20..40)
        .flat_map(|y| (20..40).map(move |x| (x, y)))
        .filter(|(x, y)| sim.pixel(*x, *y).expect("in bounds")[0] == 0)
        .count();
    assert!(holes > 10, "alpha-killed texels should punch holes: {holes}");
}

/// The scissor test restricts rendering to its rectangle.
#[test]
fn scissor_clips_rendering_and_matches_golden() {
    let mut st = RenderState::default();
    st.viewport = attila::emu::raster::Viewport::new(W, H);
    st.target_width = W;
    st.target_height = H;
    st.color_buffer = 0x10000;
    st.z_buffer = 0x20000;
    st.scissor = ScissorState { enabled: true, x: 16, y: 16, width: 24, height: 20 };
    st.vertex_program =
        Arc::new(asm::assemble("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;").unwrap());
    st.fragment_program = Arc::new(asm::assemble("!!ATTILAfp1.0\nMOV o0, i0;\nEND;").unwrap());
    let mut attrs = vec![None; 16];
    attrs[0] = Some(AttributeBinding { address: 0x40000, stride: 32, components: 4, default_w: 1.0 });
    attrs[1] = Some(AttributeBinding { address: 0x40010, stride: 32, components: 4, default_w: 1.0 });
    st.attributes = Arc::new(attrs);
    // Full-screen triangle in white.
    let verts: Vec<f32> = vec![
        -1.0, -1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, //
        3.0, -1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, //
        -1.0, 3.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0,
    ];
    let commands = vec![
        GpuCommand::SetState(Box::new(st)),
        GpuCommand::WriteBuffer {
            address: 0x40000,
            data: Arc::new(verts.iter().flat_map(|f| f.to_le_bytes()).collect()),
        },
        GpuCommand::FastClearColor(0xff00_0000), // LE bytes [0,0,0,255]: opaque black
        GpuCommand::Draw(DrawCall {
            primitive: Primitive::Triangles,
            vertex_count: 3,
            index_buffer: None,
        }),
        GpuCommand::Swap,
    ];
    let (sim, gold) = run_both(&commands);
    assert!(diff_frames(&sim, &gold).identical());
    // Inside the scissor: white. Outside: black.
    assert_eq!(sim.pixel(20, 20).expect("in bounds")[0], 255);
    assert_eq!(sim.pixel(10, 10).expect("in bounds")[0], 0);
    assert_eq!(sim.pixel(50, 30).expect("in bounds")[0], 0);
    assert_eq!(sim.pixel(20, 50).expect("in bounds")[0], 0);
}

/// Cube-map sampling (TEX with the CUBE target) through the whole
/// pipeline, one coloured face per axis direction.
#[test]
fn cubemap_sampling_matches_golden() {
    // Build a 8x8x6 cube map: face i has colour i/5 in the red channel.
    let face_px = |v: f32| vec![Vec4::new(v, 1.0 - v, 0.2, 1.0); 64];
    let mut bytes = Vec::new();
    for f in 0..6 {
        bytes.extend(encode_tiled(TexFormat::Rgba8, 8, 8, &face_px(f as f32 / 5.0)));
    }
    let mut desc = TextureDesc::new_2d(8, 8, TexFormat::Rgba8, 0x60000);
    desc.target = TexTarget::Cube;

    let mut st = RenderState::default();
    st.viewport = attila::emu::raster::Viewport::new(W, H);
    st.target_width = W;
    st.target_height = H;
    st.color_buffer = 0x10000;
    st.z_buffer = 0x20000;
    st.vertex_program =
        Arc::new(asm::assemble("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;").unwrap());
    // Sample the cube along the interpolated direction (varying i0).
    st.fragment_program = Arc::new(
        asm::assemble("!!ATTILAfp1.0\nTEX r0, i0, texture[0], CUBE;\nMOV o0, r0;\nEND;")
            .unwrap(),
    );
    let mut textures = vec![None; 16];
    textures[0] = Some(desc);
    st.textures = Arc::new(textures);
    let mut attrs = vec![None; 16];
    attrs[0] = Some(AttributeBinding { address: 0x40000, stride: 32, components: 4, default_w: 1.0 });
    attrs[1] = Some(AttributeBinding { address: 0x40010, stride: 32, components: 4, default_w: 1.0 });
    st.attributes = Arc::new(attrs);

    // Full-screen triangle whose varying sweeps directions dominated by
    // +x on the right, +y at the top.
    let verts: Vec<f32> = vec![
        -1.0, -1.0, 0.0, 1.0, -1.0, -1.0, 0.3, 0.0, //
        3.0, -1.0, 0.0, 1.0, 3.0, -1.0, 0.3, 0.0, //
        -1.0, 3.0, 0.0, 1.0, -1.0, 3.0, 0.3, 0.0,
    ];
    let commands = vec![
        GpuCommand::SetState(Box::new(st)),
        GpuCommand::WriteBuffer {
            address: 0x40000,
            data: Arc::new(verts.iter().flat_map(|f| f.to_le_bytes()).collect()),
        },
        GpuCommand::WriteBuffer { address: 0x60000, data: Arc::new(bytes) },
        GpuCommand::FastClearColor(0),
        GpuCommand::Draw(DrawCall {
            primitive: Primitive::Triangles,
            vertex_count: 3,
            index_buffer: None,
        }),
        GpuCommand::Swap,
    ];
    let (sim, gold) = run_both(&commands);
    assert!(diff_frames(&sim, &gold).identical());
    // Right side looks along +x (face 0), top along +y (face 2): their
    // red channels must differ per the per-face colours.
    let right = sim.pixel(60, 16).expect("in bounds");
    let top = sim.pixel(8, 60).expect("in bounds");
    assert_ne!(right[0], top[0], "different cube faces must be sampled");
}

/// A `Greater`-func batch raises stored depths; a later `Less`-func batch
/// must not be falsely rejected by stale Hierarchical-Z references.
#[test]
fn depth_func_direction_flip_does_not_false_reject() {
    use attila::emu::fragops::{CompareFunc as CF, DepthState};

    let base_state = |func: CF, color: [f32; 4]| {
        let mut st = RenderState::default();
        st.viewport = attila::emu::raster::Viewport::new(W, H);
        st.target_width = W;
        st.target_height = H;
        st.color_buffer = 0x10000;
        st.z_buffer = 0x20000;
        st.depth = DepthState { enabled: true, func, write: true };
        st.vertex_program =
            Arc::new(asm::assemble("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;").unwrap());
        st.fragment_program =
            Arc::new(asm::assemble("!!ATTILAfp1.0\nMOV o0, c0;\nEND;").unwrap());
        let mut consts = vec![attila::emu::Vec4::ZERO; 256];
        consts[0] = attila::emu::Vec4::new(color[0], color[1], color[2], color[3]);
        st.fragment_constants = Arc::new(consts);
        let mut attrs = vec![None; 16];
        attrs[0] = Some(AttributeBinding {
            address: 0x40000,
            stride: 16,
            components: 4,
            default_w: 1.0,
        });
        st.attributes = Arc::new(attrs);
        st
    };
    // One full-screen triangle, reused by both batches at different z.
    let tri = |z: f32| -> Vec<u8> {
        [[-1.0f32, -1.0, z, 1.0], [3.0, -1.0, z, 1.0], [-1.0, 3.0, z, 1.0]]
            .iter()
            .flat_map(|v| v.iter().flat_map(|f| f.to_le_bytes()))
            .collect()
    };
    let draw = GpuCommand::Draw(DrawCall {
        primitive: Primitive::Triangles,
        vertex_count: 3,
        index_buffer: None,
    });
    let commands = vec![
        GpuCommand::SetState(Box::new(base_state(CF::Greater, [1.0, 0.0, 0.0, 1.0]))),
        GpuCommand::WriteBuffer { address: 0x40000, data: Arc::new(tri(0.6)) }, // window z 0.8
        GpuCommand::FastClearColor(0xff00_0000),
        GpuCommand::FastClearZStencil(0), // depth cleared to 0 (near)
        draw.clone(),
        // Second batch: Less, nearer (window z 0.5): must pass everywhere.
        // Uploaded to a fresh address — buffer uploads pipeline with
        // rendering and must never overwrite a live buffer (the GL driver
        // bump-allocates; hand-built streams follow the same rule).
        GpuCommand::SetState(Box::new({
            let mut st = base_state(CF::Less, [0.0, 1.0, 0.0, 1.0]);
            let mut attrs = vec![None; 16];
            attrs[0] = Some(AttributeBinding {
                address: 0x48000,
                stride: 16,
                components: 4,
                default_w: 1.0,
            });
            st.attributes = Arc::new(attrs);
            st
        })),
        GpuCommand::WriteBuffer { address: 0x48000, data: Arc::new(tri(0.0)) },
        draw,
        GpuCommand::Swap,
    ];
    let (sim, gold) = run_both(&commands);
    let diff = diff_frames(&sim, &gold);
    assert!(diff.identical(), "direction flip diverged: {diff}");
    let px = sim.pixel(W / 2, H / 2).expect("in bounds");
    assert!(px[1] > 200 && px[0] < 50, "green Less batch must win: {px:?}");
}

/// Two overlapping batches with very different shading latencies: the
/// Fragment FIFO's reorder buffer must deliver quads to the Colour Write
/// units in rasterization (API) order even though the slow batch finishes
/// shading after the fast one.
#[test]
fn shading_completion_reorder_preserves_api_order() {
    let long_fp = {
        // A long dependent chain: each RCP waits on the previous result.
        let mut src = String::from("!!ATTILAfp1.0\nMOV r0, i0;\n");
        for _ in 0..24 {
            src.push_str("RCP r0.x, r0.x;\n");
        }
        src.push_str("MOV r0.x, i0.x;\nMOV o0, r0;\nEND;");
        src
    };
    let make_state = |fp_src: &str| {
        let mut st = RenderState::default();
        st.viewport = attila::emu::raster::Viewport::new(W, H);
        st.target_width = W;
        st.target_height = H;
        st.color_buffer = 0x10000;
        st.z_buffer = 0x20000;
        st.vertex_program =
            Arc::new(asm::assemble("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;").unwrap());
        st.fragment_program = Arc::new(asm::assemble(fp_src).unwrap());
        let mut attrs = vec![None; 16];
        attrs[0] = Some(AttributeBinding {
            address: 0x40000,
            stride: 32,
            components: 4,
            default_w: 1.0,
        });
        attrs[1] = Some(AttributeBinding {
            address: 0x40010,
            stride: 32,
            components: 4,
            default_w: 1.0,
        });
        st.attributes = Arc::new(attrs);
        st
    };
    // Full-screen triangle; colour comes from the varying (attr 1).
    let verts = |c: [f32; 4]| -> Vec<u8> {
        [
            [-1.0f32, -1.0, 0.0, 1.0],
            c,
            [3.0, -1.0, 0.0, 1.0],
            c,
            [-1.0, 3.0, 0.0, 1.0],
            c,
        ]
        .iter()
        .flat_map(|v| v.iter().flat_map(|f| f.to_le_bytes()))
        .collect()
    };
    let draw = GpuCommand::Draw(DrawCall {
        primitive: Primitive::Triangles,
        vertex_count: 3,
        index_buffer: None,
    });
    let commands = vec![
        GpuCommand::FastClearColor(0xff00_0000),
        // Batch 1: slow shading, red.
        GpuCommand::SetState(Box::new(make_state(&long_fp))),
        GpuCommand::WriteBuffer { address: 0x40000, data: Arc::new(verts([1.0, 0.0, 0.0, 1.0])) },
        draw.clone(),
        // Batch 2: fast shading, green, drawn after — must end on top.
        GpuCommand::SetState(Box::new(make_state("!!ATTILAfp1.0\nMOV o0, i0;\nEND;"))),
        GpuCommand::WriteBuffer { address: 0x48000, data: Arc::new(verts([0.0, 1.0, 0.0, 1.0])) },
        GpuCommand::SetState(Box::new({
            let mut st = make_state("!!ATTILAfp1.0\nMOV o0, i0;\nEND;");
            let mut attrs = vec![None; 16];
            attrs[0] = Some(AttributeBinding {
                address: 0x48000,
                stride: 32,
                components: 4,
                default_w: 1.0,
            });
            attrs[1] = Some(AttributeBinding {
                address: 0x48010,
                stride: 32,
                components: 4,
                default_w: 1.0,
            });
            st.attributes = Arc::new(attrs);
            st
        })),
        draw,
        GpuCommand::Swap,
    ];
    let (sim, gold) = run_both(&commands);
    let diff = diff_frames(&sim, &gold);
    assert!(diff.identical(), "completion reorder broke API order: {diff}");
    let px = sim.pixel(W / 2, H / 2).expect("in bounds");
    assert!(px[1] > 200 && px[0] < 50, "later green batch must win: {px:?}");
}
