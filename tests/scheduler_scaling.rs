//! Timing-behaviour integration tests: the case-study trends of Section 5
//! must hold (who wins, in which direction), schedulers must not change
//! rendered output, and configurations must scale sanely.

use attila::core::config::{GpuConfig, ShaderScheduling};
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};
use attila::gl::{compile, diff_frames};

fn params() -> WorkloadParams {
    WorkloadParams { width: 96, height: 96, frames: 1, texture_size: 64, ..Default::default() }
}

fn run(config: GpuConfig, trace: &attila::gl::GlTrace) -> (u64, Vec<attila::core::gpu::FrameDump>) {
    let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");
    let mut config = config;
    config.display.width = trace.width;
    config.display.height = trace.height;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 400_000_000;
    let r = gpu.run_trace(&commands).expect("drains");
    (r.cycles, r.framebuffers)
}

#[test]
fn thread_window_beats_input_queue() {
    let trace = workloads::doom3_like(params());
    let (window, fw) =
        run(GpuConfig::case_study(3, ShaderScheduling::ThreadWindow), &trace);
    let (queue, fq) = run(GpuConfig::case_study(3, ShaderScheduling::InOrderQueue), &trace);
    assert!(
        window < queue,
        "the thread window must hide texture latency: window {window} vs queue {queue}"
    );
    // Scheduling must never change the image.
    assert!(diff_frames(&fw[0], &fq[0]).identical());
}

#[test]
fn fewer_texture_units_cost_performance_with_window() {
    let trace = workloads::doom3_like(params());
    let (c3, _) = run(GpuConfig::case_study(3, ShaderScheduling::ThreadWindow), &trace);
    let (c2, _) = run(GpuConfig::case_study(2, ShaderScheduling::ThreadWindow), &trace);
    let (c1, _) = run(GpuConfig::case_study(1, ShaderScheduling::ThreadWindow), &trace);
    assert!(c3 <= c2 && c2 <= c1, "monotonic degradation: {c3} {c2} {c1}");
    let drop_3_to_1 = c1 as f64 / c3 as f64;
    assert!(drop_3_to_1 > 1.3, "3->1 TUs must hurt substantially: {drop_3_to_1:.2}x");
}

#[test]
fn input_queue_is_less_sensitive_to_texture_units() {
    let trace = workloads::doom3_like(params());
    let (w3, _) = run(GpuConfig::case_study(3, ShaderScheduling::ThreadWindow), &trace);
    let (w1, _) = run(GpuConfig::case_study(1, ShaderScheduling::ThreadWindow), &trace);
    let (q3, _) = run(GpuConfig::case_study(3, ShaderScheduling::InOrderQueue), &trace);
    let (q1, _) = run(GpuConfig::case_study(1, ShaderScheduling::InOrderQueue), &trace);
    let window_sensitivity = w1 as f64 / w3 as f64;
    let queue_sensitivity = q1 as f64 / q3 as f64;
    assert!(
        queue_sensitivity < window_sensitivity,
        "paper: the queue barely reacts to TU count (queue {queue_sensitivity:.2}x vs window {window_sensitivity:.2}x)"
    );
}

#[test]
fn texture_bandwidth_grows_with_texture_units() {
    // Figure 8: more TUs -> duplicated lines across caches -> more bytes.
    let trace = workloads::doom3_like(params());
    let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");
    let mut bytes = Vec::new();
    for tus in [1usize, 2, 3] {
        let mut config = GpuConfig::case_study(tus, ShaderScheduling::ThreadWindow);
        config.display.width = trace.width;
        config.display.height = trace.height;
        let mut gpu = Gpu::new(config);
        gpu.max_cycles = 400_000_000;
        gpu.run_trace(&commands).expect("drains");
        bytes.push(gpu.texture_bytes_read());
    }
    assert!(bytes[0] < bytes[1] && bytes[1] < bytes[2], "bandwidth per TU count: {bytes:?}");
}

#[test]
fn hz_reduces_ztest_work_on_depth_heavy_scene() {
    // This seed's box layout gives strong back-to-front overdraw at
    // 96x96, which is what Hierarchical Z exists to cull.
    let trace = workloads::doom3_like(WorkloadParams { seed: 0xC, ..params() });
    let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");
    let run_counts = |hz: bool| {
        let mut config = GpuConfig::baseline();
        config.display.width = trace.width;
        config.display.height = trace.height;
        config.hz.enabled = hz;
        let mut gpu = Gpu::new(config);
        gpu.max_cycles = 400_000_000;
        gpu.run_trace(&commands).expect("drains");
        gpu.stats().total("ZStencil0.fragments_tested").unwrap_or(0.0)
            + gpu.stats().total("ZStencil1.fragments_tested").unwrap_or(0.0)
    };
    let with_hz = run_counts(true);
    let without = run_counts(false);
    assert!(
        with_hz < without,
        "HZ must cull tiles before the Z test: {with_hz} vs {without}"
    );
}

#[test]
fn high_end_config_outperforms_baseline() {
    let mut p = params();
    p.frames = 1;
    let trace = workloads::ut2004_like(p);
    let (base, _) = run(GpuConfig::baseline(), &trace);
    let (high, _) = run(GpuConfig::high_end(), &trace);
    assert!(high < base, "8 shader units must beat 2: {high} vs {base}");
}

#[test]
fn z_compression_saves_bandwidth() {
    let trace = workloads::doom3_like(params());
    let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");
    let run_bytes = |compression: bool| {
        let mut config = GpuConfig::baseline();
        config.display.width = trace.width;
        config.display.height = trace.height;
        config.zstencil.compression = compression;
        let mut gpu = Gpu::new(config);
        gpu.max_cycles = 400_000_000;
        gpu.run_trace(&commands).expect("drains");
        gpu.memory().client_bytes(attila::mem::Client::ZStencil(0))
            + gpu.memory().client_bytes(attila::mem::Client::ZStencil(1))
    };
    let with = run_bytes(true);
    let without = run_bytes(false);
    assert!(with < without, "1:2/1:4 compression must cut Z traffic: {with} vs {without}");
}
