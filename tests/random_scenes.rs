//! Property-style whole-system test: random triangle soups rendered by
//! the cycle-level simulator must match the golden model bit for bit.
//! This is the strongest single invariant in the repository — it
//! exercises every pipeline unit with adversarial geometry (degenerate,
//! behind-the-eye, off-screen and sliver triangles included).
//!
//! Scenes are generated from a deterministic seeded RNG rather than a
//! property-testing framework, so every run exercises the same set of
//! adversarial soups and failures reproduce by seed.

#![allow(clippy::field_reassign_with_default)]
use std::sync::Arc;

use attila::core::commands::{DrawCall, GpuCommand, Primitive};
use attila::core::config::GpuConfig;
use attila::core::golden::GoldenRenderer;
use attila::core::gpu::Gpu;
use attila::core::state::{AttributeBinding, RenderState};
use attila::emu::asm;
use attila::emu::fragops::{CompareFunc, DepthState};
use attila::emu::raster::Viewport;
use attila::sim::TinyRng;

const W: u32 = 48;
const H: u32 = 48;

fn build_trace(verts: &[([f32; 4], [f32; 4])], depth: bool) -> Vec<GpuCommand> {
    let mut bytes = Vec::new();
    for (pos, col) in verts {
        for v in pos.iter().chain(col.iter()) {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut st = RenderState::default();
    st.viewport = Viewport::new(W, H);
    st.target_width = W;
    st.target_height = H;
    st.color_buffer = 0x10000;
    st.z_buffer = 0x20000;
    st.vertex_program =
        Arc::new(asm::assemble("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;").unwrap());
    st.fragment_program =
        Arc::new(asm::assemble("!!ATTILAfp1.0\nMOV o0, i0;\nEND;").unwrap());
    st.depth = DepthState { enabled: depth, func: CompareFunc::Less, write: true };
    let mut attrs = vec![None; 16];
    attrs[0] = Some(AttributeBinding { address: 0x40000, stride: 32, components: 4, default_w: 1.0 });
    attrs[1] = Some(AttributeBinding {
        address: 0x40000 + 16,
        stride: 32,
        components: 4,
        default_w: 1.0,
    });
    st.attributes = Arc::new(attrs);
    vec![
        GpuCommand::SetState(Box::new(st)),
        GpuCommand::WriteBuffer { address: 0x40000, data: Arc::new(bytes) },
        GpuCommand::FastClearColor(0xff000000),
        GpuCommand::FastClearZStencil(0x00ff_ffff),
        GpuCommand::Draw(DrawCall {
            primitive: Primitive::Triangles,
            vertex_count: verts.len() as u32,
            index_buffer: None,
        }),
        GpuCommand::Swap,
    ]
}

/// Generates an adversarial triangle soup for one seed: positions span
/// clip space (some behind the eye via w near zero, some off-screen),
/// colors span the unit cube.
fn random_soup(rng: &mut TinyRng) -> Vec<([f32; 4], [f32; 4])> {
    let count = rng.range_u32(3, 18) as usize;
    (0..count)
        .map(|_| {
            (
                [
                    rng.range_f32(-1.8, 1.8),
                    rng.range_f32(-1.8, 1.8),
                    rng.range_f32(-1.2, 1.2),
                    rng.range_f32(0.2, 2.0),
                ],
                [rng.unit_f32(), rng.unit_f32(), rng.unit_f32(), 1.0],
            )
        })
        .collect()
}

#[test]
fn random_triangle_soup_matches_golden() {
    for seed in 0..12u64 {
        let mut rng = TinyRng::new(0xA771_1A00 ^ seed);
        let verts = random_soup(&mut rng);
        let depth = rng.coin();
        let cmds = build_trace(&verts, depth);

        let mut config = GpuConfig::baseline();
        config.display.width = W;
        config.display.height = H;
        let mut gpu = Gpu::new(config);
        gpu.max_cycles = 50_000_000;
        let result = gpu.run_trace(&cmds).expect("drains");

        let mut golden = GoldenRenderer::new(64 * 1024 * 1024);
        let gold = golden.run_trace(&cmds);

        let sim = &result.framebuffers[0];
        let gold = &gold[0];
        assert_eq!(
            sim.rgba, gold.rgba,
            "cycle simulator diverged from golden model (seed {seed}, depth {depth})"
        );
    }
}
