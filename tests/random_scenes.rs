//! Property-based whole-system test: random triangle soups rendered by
//! the cycle-level simulator must match the golden model bit for bit.
//! This is the strongest single invariant in the repository — it
//! exercises every pipeline unit with adversarial geometry (degenerate,
//! behind-the-eye, off-screen and sliver triangles included).

use std::sync::Arc;

use proptest::prelude::*;

use attila::core::commands::{DrawCall, GpuCommand, Primitive};
use attila::core::config::GpuConfig;
use attila::core::golden::GoldenRenderer;
use attila::core::gpu::Gpu;
use attila::core::state::{AttributeBinding, RenderState};
use attila::emu::asm;
use attila::emu::fragops::{CompareFunc, DepthState};
use attila::emu::raster::Viewport;

const W: u32 = 48;
const H: u32 = 48;

fn build_trace(verts: &[([f32; 4], [f32; 4])], depth: bool) -> Vec<GpuCommand> {
    let mut bytes = Vec::new();
    for (pos, col) in verts {
        for v in pos.iter().chain(col.iter()) {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut st = RenderState::default();
    st.viewport = Viewport::new(W, H);
    st.target_width = W;
    st.target_height = H;
    st.color_buffer = 0x10000;
    st.z_buffer = 0x20000;
    st.vertex_program =
        Arc::new(asm::assemble("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;").unwrap());
    st.fragment_program =
        Arc::new(asm::assemble("!!ATTILAfp1.0\nMOV o0, i0;\nEND;").unwrap());
    st.depth = DepthState { enabled: depth, func: CompareFunc::Less, write: true };
    let mut attrs = vec![None; 16];
    attrs[0] = Some(AttributeBinding { address: 0x40000, stride: 32, components: 4, default_w: 1.0 });
    attrs[1] = Some(AttributeBinding {
        address: 0x40000 + 16,
        stride: 32,
        components: 4,
        default_w: 1.0,
    });
    st.attributes = Arc::new(attrs);
    vec![
        GpuCommand::SetState(Box::new(st)),
        GpuCommand::WriteBuffer { address: 0x40000, data: Arc::new(bytes) },
        GpuCommand::FastClearColor(0xff000000),
        GpuCommand::FastClearZStencil(0x00ff_ffff),
        GpuCommand::Draw(DrawCall {
            primitive: Primitive::Triangles,
            vertex_count: verts.len() as u32,
            index_buffer: None,
        }),
        GpuCommand::Swap,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
    #[test]
    fn random_triangle_soup_matches_golden(
        verts in proptest::collection::vec(
            (
                (-1.8f32..1.8, -1.8f32..1.8, -1.2f32..1.2, 0.2f32..2.0),
                (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0),
            ),
            3..18,
        ),
        depth in proptest::bool::ANY,
    ) {
        let verts: Vec<([f32; 4], [f32; 4])> = verts
            .iter()
            .map(|((x, y, z, w), (r, g, b))| ([*x, *y, *z, *w], [*r, *g, *b, 1.0]))
            .collect();
        let cmds = build_trace(&verts, depth);

        let mut config = GpuConfig::baseline();
        config.display.width = W;
        config.display.height = H;
        let mut gpu = Gpu::new(config);
        gpu.max_cycles = 50_000_000;
        let result = gpu.run_trace(&cmds).expect("drains");

        let mut golden = GoldenRenderer::new(64 * 1024 * 1024);
        let gold = golden.run_trace(&cmds);

        let sim = &result.framebuffers[0];
        let gold = &gold[0];
        prop_assert_eq!(&sim.rgba, &gold.rgba, "cycle simulator diverged from golden model");
    }
}
