//! Fixture tests for the attila-lint v2 source analyses: each drifted
//! fixture must fire the right rule at the right place, and the real
//! workspace must come back clean so the CI gate stays meaningful.

use std::path::{Path, PathBuf};
use std::process::Command;

use attila::lint::{lint, scan_workspace, Finding, ScannedFile, Severity};

fn lint_fixture(path: &str, source: &str) -> Vec<Finding> {
    lint(&[ScannedFile::new(path, source)])
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unserialized_box_field_fires_state_coverage() {
    let src = r#"
pub struct FooState {
    pub a: u64,
}

pub struct Foo {
    a: u64,
    b: u64,
}

impl Foo {
    pub fn save_state(&self) -> FooState {
        FooState { a: self.a }
    }
    pub fn load_state(&mut self, s: &FooState) {
        self.a = s.a;
    }
}
"#;
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    let hit = findings
        .iter()
        .find(|f| f.rule == "state-coverage")
        .expect("unserialized field must fire state-coverage");
    assert_eq!(hit.severity, Severity::Deny);
    assert!(hit.message.contains("`b` of `Foo`"), "wrong field: {}", hit.message);
    assert_eq!(hit.line, 8, "must point at the field declaration");
}

#[test]
fn save_restore_drift_fires_state_pair() {
    let src = r#"
pub struct BarState {
    pub x: u64,
    pub y: u64,
}

pub struct Bar {
    x: u64,
    y: u64,
}

impl Bar {
    pub fn save_state(&self) -> BarState {
        BarState { x: self.x, y: self.y }
    }
    pub fn load_state(&mut self, s: &BarState) {
        self.x = s.x;
    }
}
"#;
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    let hit = findings
        .iter()
        .find(|f| f.rule == "state-pair" && f.message.contains("`y` of `Bar`"))
        .expect("a field saved but not restored must fire state-pair");
    assert_eq!(hit.severity, Severity::Deny);
    assert!(
        hit.message.contains("Bar::load_state"),
        "must name the drifted path: {}",
        hit.message
    );
}

#[test]
fn state_annotations_exempt_fields() {
    let src = r#"
pub struct QuxState {
    pub x: u64,
}

pub struct Qux {
    x: u64,
    scratch: u64, // state: transient — drained at the boundary
    // state: derived — rebuilt at elaboration
    table_a: u64,
    table_b: u64,
    // state: checkpointed
    y: u64,
}

impl Qux {
    pub fn save_state(&self) -> QuxState {
        QuxState { x: self.x }
    }
    pub fn load_state(&mut self, s: &QuxState) {
        self.x = s.x;
    }
}
"#;
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    // `scratch`, `table_a` and `table_b` are annotated away; `y` sits
    // after the `checkpointed` reset so its omission still fires.
    assert!(
        !findings.iter().any(|f| f.message.contains("`scratch`")
            || f.message.contains("`table_a`")
            || f.message.contains("`table_b`")),
        "annotated fields must be exempt: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "state-coverage" && f.message.contains("`y` of `Qux`")),
        "a field after a `state: checkpointed` reset must still be covered: {findings:?}"
    );
}

#[test]
fn unknown_state_annotation_kind_warns() {
    let src = r#"
pub struct MehState {
    pub x: u64,
}

pub struct Meh {
    x: u64,
    y: u64, // state: bogus
}

impl Meh {
    pub fn save_state(&self) -> MehState {
        MehState { x: self.x }
    }
    pub fn load_state(&mut self, s: &MehState) {
        self.x = s.x;
    }
}
"#;
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    let hit = findings
        .iter()
        .find(|f| f.rule == "state-annotation")
        .expect("unknown annotation kind must warn");
    assert_eq!(hit.severity, Severity::Warn);
    assert!(hit.message.contains("bogus"), "{}", hit.message);
}

#[test]
fn work_horizon_bumping_a_counter_fires_horizon_purity() {
    let src = r#"
pub struct Probe {
    calls: u64,
}

impl Probe {
    pub fn work_horizon(&mut self) -> u64 {
        self.calls += 1;
        0
    }
}
"#;
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    let hits: Vec<&Finding> =
        findings.iter().filter(|f| f.rule == "horizon-purity").collect();
    // Both the `&mut self` signature and the field bump are flagged.
    assert!(
        hits.iter().any(|f| f.message.contains("&self")),
        "`&mut self` signature must be denied: {findings:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("side effect")),
        "the counter bump must be denied: {findings:?}"
    );
    assert!(hits.iter().all(|f| f.severity == Severity::Deny));
}

#[test]
fn horizon_purity_follows_the_call_graph() {
    let src = r#"
pub struct Probe {
    stat: std::sync::atomic::AtomicU64,
}

impl Probe {
    pub fn work_horizon(&self) -> u64 {
        self.peek_ahead()
    }
    fn peek_ahead(&self) -> u64 {
        self.stat.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }
}
"#;
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    let hit = findings
        .iter()
        .find(|f| f.rule == "horizon-purity")
        .expect("atomic bump reached through a helper must fire");
    assert!(hit.message.contains("peek_ahead"), "{}", hit.message);
}

#[test]
fn chain_box_interior_mutability_fires_shared_mut_transitively() {
    let src = r#"
pub struct Boxy {
    cell: std::cell::RefCell<Vec<u64>>,
}

impl Boxy {
    pub fn clock_pure(&mut self) {
        self.helper_step();
    }
    fn helper_step(&mut self) {
        self.cell.borrow_mut().push(1);
    }
}
"#;
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    let hit = findings
        .iter()
        .find(|f| f.rule == "shared-mut")
        .expect("interior mutability reached from clock_pure must fire");
    assert_eq!(hit.severity, Severity::Deny);
    assert!(hit.message.contains("helper_step"), "must name the reached fn: {}", hit.message);
}

#[test]
fn lock_traffic_on_the_clock_path_fires_phase_safety() {
    let src = r#"
pub struct Boxy {
    shared: std::sync::Mutex<u64>,
}

impl Boxy {
    pub fn clock_pure(&mut self) {
        self.pump_queue();
    }
    fn pump_queue(&mut self) {
        let _guard = self.shared.lock();
    }
}
"#;
    let findings = lint_fixture("crates/mem/src/fixture.rs", src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "phase-safety" && f.message.contains("lock traffic")),
        "lock traffic in a clock-reachable fn must fire phase-safety: {findings:?}"
    );
}

#[test]
fn shard_cell_outside_its_funnels_fires_phase_safety() {
    let src = "use attila_core::ShardCell;\n";
    let findings = lint_fixture("crates/mem/src/fixture.rs", src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "phase-safety" && f.message.contains("ShardCell")),
        "naming ShardCell outside shard.rs/gpu.rs/lib.rs must fire: {findings:?}"
    );
}

#[test]
fn unsafe_rules_are_scoped_to_core_with_safety_comments() {
    // Outside crates/core: always denied, SAFETY comment or not.
    let outside = lint_fixture(
        "crates/mem/src/fixture.rs",
        "fn f() {\n    // SAFETY: not good enough here\n    unsafe { imagine() }\n}\n",
    );
    assert!(rules(&outside).contains(&"phase-unsafe"), "{outside:?}");

    // Inside crates/core without a SAFETY comment: denied.
    let bare = lint_fixture("crates/core/src/fixture.rs", "fn f() {\n    unsafe { imagine() }\n}\n");
    assert!(rules(&bare).contains(&"phase-unsafe"), "{bare:?}");

    // Inside crates/core with a (multi-line) SAFETY block directly above: clean.
    let blessed = lint_fixture(
        "crates/core/src/fixture.rs",
        "fn f() {\n    // SAFETY: the chain phase owns this slot for the whole\n    // domain step; no other thread can alias it.\n    unsafe { imagine() }\n}\n",
    );
    assert!(!rules(&blessed).contains(&"phase-unsafe"), "{blessed:?}");
}

#[test]
fn stale_suppressions_fire_unused_allow() {
    let src = "// lint:allow(hash-iter)\nfn clean() {}\n// lint:allow(no-such-rule)\nfn also_clean() {}\n";
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    let stale: Vec<&Finding> =
        findings.iter().filter(|f| f.rule == "unused-allow").collect();
    assert_eq!(stale.len(), 2, "{findings:?}");
    assert!(stale.iter().all(|f| f.severity == Severity::Warn));
    assert!(
        stale.iter().any(|f| f.message.contains("matches no finding")),
        "{findings:?}"
    );
    assert!(
        stale.iter().any(|f| f.message.contains("unknown rule `no-such-rule`")),
        "{findings:?}"
    );
}

#[test]
fn consumed_suppression_silences_the_finding_and_is_not_stale() {
    let src = "// lint:allow(hash-iter) tests the allow plumbing\nuse std::collections::HashMap;\n";
    let findings = lint_fixture("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let files = scan_workspace(&root).expect("workspace scans");
    assert!(files.len() > 20, "scan found only {} files", files.len());
    let findings = lint(&files);
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; found:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

fn attila_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_attila"))
}

#[test]
fn cli_source_lint_exits_zero_on_a_clean_tree() {
    let out = attila_bin()
        .args(["lint", "--source", "--deny-warnings", "--root", env!("CARGO_MANIFEST_DIR")])
        .output()
        .expect("attila runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("0 deny, 0 warn"), "stdout: {stdout}");
}

#[test]
fn cli_source_lint_exits_one_on_findings_and_writes_the_report() {
    let dir = std::env::temp_dir().join(format!("attila-lint-fixture-{}", std::process::id()));
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(src_dir.join("bad.rs"), "use std::collections::HashMap;\n").unwrap();
    let report = dir.join("report.txt");

    let out = attila_bin()
        .args(["lint", "--source", "--deny-warnings"])
        .arg("--report")
        .arg(&report)
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("attila runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("hash-iter"), "stdout: {stdout}");
    let written = std::fs::read_to_string(&report).expect("report file exists");
    assert_eq!(written, stdout, "report must match stdout byte for byte");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn standalone_linter_binary_agrees_with_the_cli() {
    // `cargo run -p attila-lint` and `attila lint --source` share the
    // engine; prove the binary exists and exits clean on the real tree.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = attila_bin()
        .args(["lint", "--source"])
        .arg("--root")
        .arg(root)
        .output()
        .expect("attila runs");
    assert!(out.status.success());
}
