//! Architecture-verifier fixtures: miswire a miniature GPU and assert
//! that each rule of the elaboration-time lint catches its bug class,
//! then prove every shipped preset elaborates clean.

use attila::core::config::{GpuConfig, ShaderScheduling};
use attila::core::gpu::Gpu;
use attila::sim::{BoxNode, Horizon, PortDecl, Severity, SignalEdge, Topology};

/// A wire of the miniature GPU.
fn edge(
    name: &str,
    from: &str,
    to: &str,
    latency: u64,
    in_flight: usize,
    next_arrival: Option<u64>,
) -> SignalEdge {
    SignalEdge {
        info: attila::sim::SignalInfo {
            name: name.into(),
            from_box: from.into(),
            to_box: to.into(),
            bandwidth: 1,
            latency,
        },
        in_flight,
        next_arrival,
    }
}

/// A correctly-wired two-box pipeline: `Front --x--> Back`.
fn clean_pair() -> Topology {
    Topology {
        boxes: vec![
            BoxNode::new("Front", Horizon::Busy, vec![PortDecl::output("x")]),
            BoxNode::new("Back", Horizon::Busy, vec![PortDecl::input("x")]),
        ],
        signals: vec![edge("x", "Front", "Back", 1, 0, None)],
        stat_registrations: Vec::new(),
    }
}

#[test]
fn clean_miniature_gpu_lints_clean() {
    let report = clean_pair().verify();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn dangling_declared_port_is_denied() {
    // Back declares an input `ghost` that was never wired.
    let mut t = clean_pair();
    t.boxes[1].ports.push(PortDecl::input("ghost"));
    let report = t.verify();
    assert!(!report.by_rule("dangling-signal").is_empty(), "{report}");
    assert!(report.deny_count() > 0, "{report}");
}

#[test]
fn undeclared_wired_signal_is_denied() {
    // A wire lands on Back but Back's interface says nothing about it:
    // data would arrive that no port ever reads.
    let mut t = clean_pair();
    t.boxes[0].ports.push(PortDecl::output("extra"));
    t.signals.push(edge("extra", "Front", "Back", 1, 0, None));
    let report = t.verify();
    let hits = report.by_rule("dangling-signal");
    assert!(!hits.is_empty(), "{report}");
    assert!(
        hits.iter().any(|f| f.message.contains("written-but-never-read")),
        "{report}"
    );
}

#[test]
fn signal_to_nonexistent_box_is_denied() {
    let mut t = clean_pair();
    t.signals.push(edge("void", "Front", "Nowhere", 1, 0, None));
    t.boxes[0].ports.push(PortDecl::output("void"));
    let report = t.verify();
    assert!(!report.by_rule("dangling-signal").is_empty(), "{report}");
}

#[test]
fn wrong_port_direction_is_denied() {
    // Back claims it *writes* x, but the binder wired it as the reader.
    let mut t = clean_pair();
    t.boxes[1].ports[0] = PortDecl::output("x");
    let report = t.verify();
    assert!(!report.by_rule("port-direction").is_empty(), "{report}");
}

#[test]
fn zero_latency_loop_is_denied() {
    // Front -> Back -> Front entirely over latency-0 wires: the result
    // would depend on which box clocks first.
    let t = Topology {
        boxes: vec![
            BoxNode::new(
                "Front",
                Horizon::Busy,
                vec![PortDecl::output("fwd"), PortDecl::input("bwd")],
            ),
            BoxNode::new(
                "Back",
                Horizon::Busy,
                vec![PortDecl::input("fwd"), PortDecl::output("bwd")],
            ),
        ],
        signals: vec![
            edge("fwd", "Front", "Back", 0, 0, None),
            edge("bwd", "Back", "Front", 0, 0, None),
        ],
        stat_registrations: Vec::new(),
    };
    let report = t.verify();
    let hits = report.by_rule("zero-latency-cycle");
    assert!(!hits.is_empty(), "{report}");
    assert_eq!(hits[0].severity, Severity::Deny);
    // The finding names the cycle path so it can actually be fixed.
    assert!(hits[0].message.contains("Front"), "{report}");

    // The same loop with one registered (latency >= 1) wire is legal.
    let mut ok = t;
    ok.signals[1].info.latency = 1;
    assert!(ok.verify().by_rule("zero-latency-cycle").is_empty());
}

#[test]
fn lying_idle_horizon_is_denied() {
    // Back says Idle while two objects are in flight on its input wire:
    // the idle-skip scheduler would sleep through their arrival.
    let mut t = clean_pair();
    t.boxes[1].horizon = Some(Horizon::Idle);
    t.signals[0].in_flight = 2;
    t.signals[0].next_arrival = Some(7);
    let report = t.verify();
    let hits = report.by_rule("horizon-contract");
    assert!(!hits.is_empty(), "{report}");
    assert_eq!(hits[0].severity, Severity::Deny);
}

#[test]
fn late_wakeup_horizon_is_denied() {
    // Back promises to sleep until cycle 100 but data lands at cycle 7.
    let mut t = clean_pair();
    t.boxes[1].horizon = Some(Horizon::IdleUntil(100));
    t.signals[0].in_flight = 1;
    t.signals[0].next_arrival = Some(7);
    let report = t.verify();
    assert!(!report.by_rule("horizon-contract").is_empty(), "{report}");

    // Waking *at or before* the arrival is fine.
    let mut ok = clean_pair();
    ok.boxes[1].horizon = Some(Horizon::IdleUntil(7));
    ok.signals[0].in_flight = 1;
    ok.signals[0].next_arrival = Some(7);
    assert!(ok.verify().by_rule("horizon-contract").is_empty());
}

#[test]
fn duplicate_stat_registration_warns() {
    let mut t = clean_pair();
    t.stat_registrations.push(("Front.quads".into(), 2));
    let report = t.verify();
    let hits = report.by_rule("duplicate-stat");
    assert!(!hits.is_empty(), "{report}");
    assert_eq!(hits[0].severity, Severity::Warn);
}

#[test]
fn bandwidth_expectation_mismatch_warns() {
    let mut t = clean_pair();
    t.boxes[0].ports[0] = PortDecl::output("x").with_bandwidth(4); // wire has 1
    let report = t.verify();
    assert!(!report.by_rule("bandwidth-mismatch").is_empty(), "{report}");
}

#[test]
fn every_preset_elaborates_clean() {
    let presets: Vec<(&str, GpuConfig)> = vec![
        ("baseline", GpuConfig::baseline()),
        ("non_unified_baseline", GpuConfig::non_unified_baseline()),
        ("case_study_window", GpuConfig::case_study(3, ShaderScheduling::ThreadWindow)),
        ("case_study_queue", GpuConfig::case_study(2, ShaderScheduling::InOrderQueue)),
        ("case_study_single_tu", GpuConfig::case_study(1, ShaderScheduling::ThreadWindow)),
        ("embedded", GpuConfig::embedded()),
        ("high_end", GpuConfig::high_end()),
    ];
    for (name, config) in presets {
        // `lint_on_start` defaults on, so construction itself already
        // asserts no deny findings; check warns too.
        let gpu = Gpu::new(config);
        let report = gpu.lint();
        assert!(report.is_clean(), "{name}: {report}");

        let summary = gpu.topology().summary();
        assert!(summary.box_count >= 10, "{name}: {summary}");
        assert_eq!(summary.signal_count, summary.signal_names.len(), "{name}");
    }
}
