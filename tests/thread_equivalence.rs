//! Threaded-scheduler equivalence: the clock-domain worker pool must be a
//! pure wall-clock optimization. Cycles, statistics and framebuffers are
//! compared bit-for-bit between the serial loop and the threaded loop at
//! 2, 4 and 8 threads, and the fault-injection path is checked to drop
//! back to the serial transport (staged mailbox lanes bypass fault hooks,
//! so a chaos-tested machine must never use them).

use std::sync::OnceLock;

use attila::core::commands::GpuCommand;
use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::core::ShaderScheduling;
use attila::gl::{compile, workloads};
use attila::sim::{FaultInjector, FaultPlan};

const W: u32 = 48;
const H: u32 = 48;

fn scene() -> &'static Vec<GpuCommand> {
    static SCENE: OnceLock<Vec<GpuCommand>> = OnceLock::new();
    SCENE.get_or_init(|| {
        let params = workloads::WorkloadParams {
            width: W,
            height: H,
            frames: 3,
            texture_size: 64,
            detail: 1,
            ..Default::default()
        };
        let trace = workloads::embedded_scene(params);
        compile(trace.width, trace.height, &trace.calls).expect("scene compiles")
    })
}

fn config() -> GpuConfig {
    let mut config = GpuConfig::case_study(1, ShaderScheduling::ThreadWindow);
    config.display.width = W;
    config.display.height = H;
    config
}

/// Everything that must match bit-for-bit across thread counts.
#[derive(PartialEq)]
struct FinalState {
    cycles: u64,
    cycles_skipped: u64,
    frames: Vec<(u32, u32, Vec<u8>)>,
    stats: Vec<(String, String)>,
}

impl FinalState {
    fn assert_matches(&self, reference: &FinalState, ctx: &str) {
        assert_eq!(self.cycles, reference.cycles, "{ctx}: final cycle diverged");
        assert_eq!(
            self.cycles_skipped, reference.cycles_skipped,
            "{ctx}: idle-skip behaviour diverged"
        );
        assert_eq!(
            self.frames.len(),
            reference.frames.len(),
            "{ctx}: frame count diverged"
        );
        for (i, (r, b)) in self.frames.iter().zip(&reference.frames).enumerate() {
            assert!(r == b, "{ctx}: frame {i} not bit-identical");
        }
        assert_eq!(self.stats, reference.stats, "{ctx}: statistics diverged");
    }
}

fn final_state(gpu: &Gpu, frames: &[attila::core::FrameDump]) -> FinalState {
    FinalState {
        cycles: gpu.cycle(),
        cycles_skipped: gpu.cycles_skipped(),
        frames: frames
            .iter()
            .map(|f| (f.width, f.height, f.rgba.clone()))
            .collect(),
        stats: gpu
            .stats()
            .names()
            .iter()
            .filter_map(|n| {
                // Exact bit comparison: totals via their bits, not a
                // rounded rendering.
                gpu.stats()
                    .total(n)
                    .map(|v| (n.to_string(), format!("{:016x}", v.to_bits())))
            })
            .collect(),
    }
}

fn run(mut gpu: Gpu) -> FinalState {
    gpu.max_cycles = 50_000_000;
    let result = gpu.run_trace(scene()).expect("run drains");
    final_state(&gpu, &result.framebuffers)
}

#[test]
fn threaded_runs_are_bit_identical_to_serial() {
    let reference = run(Gpu::new(config()));
    assert_eq!(reference.frames.len(), 3, "the scene renders three frames");
    for threads in [2, 4, 8] {
        let gpu = Gpu::with_threads(config(), threads);
        assert!(
            gpu.threading_active(),
            "{threads} threads under OnFault::Abort must arm the pool"
        );
        run(gpu).assert_matches(&reference, &format!("{threads} threads"));
    }
}

#[test]
fn fault_injection_drops_back_to_the_serial_loop() {
    // The staged mailbox lanes bypass per-wire fault hooks, so arming an
    // injector must disable them — and the chaos-tested run must still be
    // bit-identical to its serial twin.
    let injector = || {
        FaultInjector::new(11).with(FaultPlan::FlipBits { reply: 17, bit: 3 })
    };
    let mut serial = Gpu::new(config());
    serial.adopt_faults(injector()).expect("plan names real hooks");
    let reference = run(serial);

    let mut threaded = Gpu::with_threads(config(), 4);
    assert!(threaded.threading_active(), "pool armed before faults");
    threaded.adopt_faults(injector()).expect("plan names real hooks");
    assert!(
        !threaded.threading_active(),
        "fault hooks live in the serial transport; staging must disarm"
    );
    run(threaded).assert_matches(&reference, "faulty run at 4 threads");
}

#[test]
fn thread_counts_clamp_to_the_pipeline_chain() {
    // One coordinator plus at most one worker per chain box.
    let gpu = Gpu::with_threads(config(), 64);
    assert_eq!(gpu.threads(), 8, "7 chain domains + the coordinator");
    let gpu = Gpu::with_threads(config(), 1);
    assert_eq!(gpu.threads(), 1);
    assert!(!gpu.threading_active(), "one thread means the serial loop");
}
