//! Chaos tests: injected faults must surface as the matching
//! [`SimError`] variant, name the offending signal and cycle in the
//! failure report, and — under `OnFault::Isolate` — degrade the wire
//! instead of killing the run.

use attila::core::config::{GpuConfig, OnFault};
use attila::core::gpu::{Gpu, GpuError};
use attila::gl::{compile, workloads};
use attila::sim::{FaultInjector, FaultPlan, FaultWrite, SimError};

const W: u32 = 64;
const H: u32 = 64;

/// The single-triangle quickstart scene: every front-end wire carries a
/// handful of objects, every back-end wire carries thousands of quads.
fn commands() -> Vec<attila::core::commands::GpuCommand> {
    let trace = workloads::quickstart_trace(W, H);
    compile(trace.width, trace.height, &trace.calls).expect("compiles")
}

fn gpu(on_fault: OnFault, injector: &mut FaultInjector) -> Gpu {
    let mut config = GpuConfig::baseline();
    config.display.width = W;
    config.display.height = H;
    config.on_fault = on_fault;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 2_000_000;
    gpu.arm_faults(injector).expect("plans name real signals");
    gpu
}

/// The wire every quickstart vertex crosses; bandwidth 1, so a
/// double-latched write always over-subscribes it.
const VERTEX_WIRE: &str = "Streamer->PA.vertices";

#[test]
fn duplicate_write_surfaces_as_bandwidth_exceeded() {
    let mut inj = FaultInjector::new(1).with(FaultPlan::Duplicate {
        signal: VERTEX_WIRE.into(),
        write: FaultWrite::Nth(1),
    });
    let mut gpu = gpu(OnFault::Abort, &mut inj);
    let err = gpu.run_trace(&commands()).expect_err("fault must abort the run");
    let GpuError::Sim { error, report } = err else {
        panic!("expected a Sim error, got {err:?}");
    };
    assert!(
        matches!(&error, SimError::BandwidthExceeded { signal, .. } if signal == VERTEX_WIRE),
        "wrong variant: {error:?}"
    );
    assert_eq!(error.signal(), Some(VERTEX_WIRE));
    assert!(error.cycle().is_some(), "bandwidth faults carry the offending cycle");
    // The post-mortem names the wire and carries the same error.
    assert_eq!(report.error.as_ref(), Some(&error));
    assert!(report.to_string().contains(VERTEX_WIRE), "{report}");
    assert_eq!(inj.faults_delivered(), 1);
}

#[test]
fn positive_delay_surfaces_as_data_lost() {
    // Vertex 0 arrives 500 cycles late; vertices 1 and 2 queue up behind
    // it on the wire and fall off unread when it finally clears.
    let mut inj = FaultInjector::new(2).with(FaultPlan::Delay {
        signal: VERTEX_WIRE.into(),
        write: FaultWrite::Nth(0),
        delay: 500,
    });
    let mut gpu = gpu(OnFault::Abort, &mut inj);
    let err = gpu.run_trace(&commands()).expect_err("fault must abort the run");
    let GpuError::Sim { error, .. } = err else {
        panic!("expected a Sim error, got {err:?}");
    };
    assert!(
        matches!(&error, SimError::DataLost { signal, .. } if signal == VERTEX_WIRE),
        "wrong variant: {error:?}"
    );
    assert!(error.cycle().expect("cycle known") >= 500, "loss detected after the delay");
}

#[test]
fn negative_delay_surfaces_as_time_travel() {
    let mut inj = FaultInjector::new(3).with(FaultPlan::Delay {
        signal: VERTEX_WIRE.into(),
        write: FaultWrite::Nth(2),
        delay: -1_000_000,
    });
    let mut gpu = gpu(OnFault::Abort, &mut inj);
    let err = gpu.run_trace(&commands()).expect_err("fault must abort the run");
    let GpuError::Sim { error, report } = err else {
        panic!("expected a Sim error, got {err:?}");
    };
    assert!(
        matches!(&error, SimError::TimeTravel { signal, .. } if signal == VERTEX_WIRE),
        "wrong variant: {error:?}"
    );
    assert_eq!(error.signal(), Some(VERTEX_WIRE));
    assert!(report.to_string().contains("written at cycle"), "{report}");
}

#[test]
fn memory_stall_hangs_the_pipeline_into_the_watchdog() {
    // Freeze the memory controller forever (in practice: past the
    // watchdog). Nothing crashes — the pipeline simply stops draining,
    // and the watchdog report must say who is stuck.
    let mut inj = FaultInjector::new(4)
        .with(FaultPlan::StallMemory { at: 1_000, cycles: 100_000_000 });
    let mut gpu = gpu(OnFault::Abort, &mut inj);
    gpu.max_cycles = 100_000;
    let err = gpu.run_trace(&commands()).expect_err("a frozen controller must hang");
    let GpuError::Watchdog { limit, report } = err else {
        panic!("expected a watchdog expiry, got {err:?}");
    };
    assert_eq!(limit, 100_000);
    assert!(report.error.is_none(), "a hang is not a detected fault");
    assert!(report.busy_boxes().count() > 0, "someone must be holding work:\n{report}");
    assert!(report.to_string().contains("watchdog"), "{report}");
}

#[test]
fn bit_flip_corrupts_the_frame_but_completes() {
    let clean = {
        let mut config = GpuConfig::baseline();
        config.display.width = W;
        config.display.height = H;
        let mut gpu = Gpu::new(config);
        gpu.max_cycles = 2_000_000;
        gpu.run_trace(&commands()).expect("clean run drains")
    };

    // Reply 12 is one of the texture-cache fills (replies 0-8 are vertex
    // fetches, consumed functionally before the reply returns): the flip
    // lands in texture memory the sampler reads for later quads.
    let mut inj = FaultInjector::new(5).with(FaultPlan::FlipBits { reply: 12, bit: 7 });
    let mut gpu = gpu(OnFault::Abort, &mut inj);
    let result = gpu.run_trace(&commands()).expect("a silent DRAM error is not a SimError");
    assert_eq!(inj.faults_delivered(), 1, "the flip must have hit a reply");
    assert_eq!(result.framebuffers.len(), clean.framebuffers.len());
    assert_ne!(
        result.framebuffers[0].rgba, clean.framebuffers[0].rgba,
        "a flipped texture bit must show up in the rendered frame"
    );
}

#[test]
fn isolate_policy_degrades_the_wire_and_still_renders() {
    // Same duplicate fault that aborts under OnFault::Abort — under
    // Isolate the wire is marked lossy, the excess write falls on the
    // floor, and the frame still comes out (vertices aren't lost: only
    // the duplicated latch slot is).
    let mut inj = FaultInjector::new(6).with(FaultPlan::Duplicate {
        signal: VERTEX_WIRE.into(),
        write: FaultWrite::Nth(1),
    });
    let mut gpu = gpu(OnFault::Isolate, &mut inj);
    let result = gpu.run_trace(&commands()).expect("isolation must keep the run alive");
    assert_eq!(result.framebuffers.len(), 1, "the frame must still be swapped out");
    assert!(!gpu.fault_log().is_empty(), "the absorbed fault must be logged");
    assert_eq!(gpu.fault_log()[0].signal(), Some(VERTEX_WIRE));
    let status = gpu
        .binder()
        .statuses()
        .into_iter()
        .find(|s| s.name == VERTEX_WIRE)
        .expect("wire exists");
    assert!(status.lossy, "isolation must have degraded exactly the offending wire");
}

#[test]
fn report_policy_logs_and_continues() {
    let mut inj = FaultInjector::new(7).with(FaultPlan::Delay {
        signal: VERTEX_WIRE.into(),
        write: FaultWrite::Nth(2),
        delay: -1_000_000,
    });
    let mut gpu = gpu(OnFault::Report, &mut inj);
    let result = gpu.run_trace(&commands()).expect("report policy must not abort");
    assert_eq!(result.framebuffers.len(), 1);
    assert!(
        gpu.fault_log().iter().any(|e| matches!(e, SimError::TimeTravel { .. })),
        "the time-travel fault must be in the log: {:?}",
        gpu.fault_log()
    );
}
