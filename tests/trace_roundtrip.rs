//! Trace-tooling integration: capture → serialize → replay must be
//! lossless, and hot start must reproduce later frames exactly.

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};
use attila::gl::{compile, diff_frames, GlPlayer, GlTrace};

fn run_frames(cmds: &[attila::core::commands::GpuCommand], w: u32, h: u32) -> Vec<attila::core::gpu::FrameDump> {
    let mut config = GpuConfig::baseline();
    config.display.width = w;
    config.display.height = h;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 200_000_000;
    gpu.run_trace(cmds).expect("drains").framebuffers
}

fn three_frame_trace() -> GlTrace {
    workloads::embedded_scene(WorkloadParams {
        width: 64,
        height: 64,
        frames: 3,
        texture_size: 32,
        ..Default::default()
    })
}

#[test]
fn serialized_trace_replays_identically() {
    let trace = three_frame_trace();
    let reloaded = GlTrace::from_json(&trace.to_json()).expect("parses");
    assert_eq!(reloaded, trace);
    let direct = compile(trace.width, trace.height, &trace.calls).expect("compiles");
    let replayed = GlPlayer::new().replay(&reloaded).expect("replays");
    let f1 = run_frames(&direct, trace.width, trace.height);
    let f2 = run_frames(&replayed, trace.width, trace.height);
    assert_eq!(f1.len(), f2.len());
    for (a, b) in f1.iter().zip(&f2) {
        assert!(diff_frames(a, b).identical());
    }
}

#[test]
fn hot_start_reproduces_final_frame() {
    let trace = three_frame_trace();
    let full = GlPlayer::new().replay(&trace).expect("replays");
    let full_frames = run_frames(&full, trace.width, trace.height);
    for skip in [1u64, 2] {
        let hot = GlPlayer { skip_frames: skip, max_frames: None }
            .replay(&trace)
            .expect("replays");
        let hot_frames = run_frames(&hot, trace.width, trace.height);
        let diff = diff_frames(
            full_frames.last().expect("frames"),
            hot_frames.last().expect("frames"),
        );
        assert!(
            diff.identical(),
            "hot start at frame {skip} must match the full run's final frame: {diff}"
        );
    }
}

#[test]
fn max_frames_limits_simulated_span() {
    let trace = three_frame_trace();
    let cmds = GlPlayer { skip_frames: 1, max_frames: Some(1) }
        .replay(&trace)
        .expect("replays");
    let frames = run_frames(&cmds, trace.width, trace.height);
    // Frame 0 swap still happens (state-only), frame 1 is simulated, then
    // the player stops: two swaps total.
    assert_eq!(frames.len(), 2);
}
